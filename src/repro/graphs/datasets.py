"""Laptop-scale surrogates for the paper's three evaluation networks.

The paper evaluates on dblp (226,413 vertices / 716,460 edges, avg degree
6.33, clustering 0.38), flickr (588,166 vertices, avg degree 19.73,
clustering 0.12) and Y360 (1,226,311 vertices, avg degree 4.27,
clustering 0.04).  The raw snapshots are not redistributable, and this
reproduction is offline, so each dataset is replaced by a Holme–Kim
power-law-cluster surrogate that matches the features the obfuscation
algorithm is actually sensitive to:

* **average degree / density** — drives the size of the candidate set
  ``E_C = c|E|`` and the Poisson-binomial supports;
* **degree-distribution skew** — drives vertex uniqueness, hence how much
  uncertainty the unique tail needs;
* **clustering level** — drives the utility statistics S_CC and the
  triangle-sensitive comparisons of Table 6.

Sizes default to roughly 1/50th of the originals (see DESIGN.md §3);
``scale`` rescales vertex counts while preserving density, so users with
more time can re-run everything closer to the paper's scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.generators import powerlaw_cluster
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of one surrogate dataset.

    Attributes
    ----------
    name:
        Paper dataset this surrogate stands in for.
    base_n:
        Vertex count at ``scale=1.0``.
    attach_m:
        Holme–Kim attachment parameter (≈ half the average degree).
    triad_p:
        Triangle-closure probability, tuned to land near the paper's
        clustering coefficient for the dataset.
    paper_n, paper_m:
        The real network's size, kept for documentation and reporting.
    """

    name: str
    base_n: int
    attach_m: int
    triad_p: float
    paper_n: int
    paper_m: int


#: The three surrogate specifications (see module docstring for rationale).
DATASET_SPECS: dict[str, DatasetSpec] = {
    "dblp": DatasetSpec(
        name="dblp", base_n=4500, attach_m=3, triad_p=0.75,
        paper_n=226_413, paper_m=716_460,
    ),
    "flickr": DatasetSpec(
        name="flickr", base_n=3000, attach_m=10, triad_p=0.25,
        paper_n=588_166, paper_m=5_801_442,
    ),
    "y360": DatasetSpec(
        name="y360", base_n=6000, attach_m=2, triad_p=0.10,
        paper_n=1_226_311, paper_m=2_618_645,
    ),
}


def _build(spec: DatasetSpec, scale: float, seed) -> Graph:
    n = max(spec.attach_m + 2, int(round(spec.base_n * scale)))
    return powerlaw_cluster(n, spec.attach_m, spec.triad_p, seed=seed)


def dblp_like(*, scale: float = 1.0, seed=0) -> Graph:
    """Surrogate for the dblp co-authorship graph (avg degree ≈ 6.3, clustered)."""
    return _build(DATASET_SPECS["dblp"], scale, seed)


def flickr_like(*, scale: float = 1.0, seed=0) -> Graph:
    """Surrogate for the flickr contact graph (dense, avg degree ≈ 20)."""
    return _build(DATASET_SPECS["flickr"], scale, seed)


def y360_like(*, scale: float = 1.0, seed=0) -> Graph:
    """Surrogate for the Yahoo! 360 friendship graph (sparse, avg degree ≈ 4.3)."""
    return _build(DATASET_SPECS["y360"], scale, seed)


def load_dataset(name: str, *, scale: float = 1.0, seed=0) -> Graph:
    """Load a surrogate dataset by paper name (``dblp``/``flickr``/``y360``)."""
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_SPECS)}")
    return _build(DATASET_SPECS[key], scale, seed)
