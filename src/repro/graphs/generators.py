"""Random-graph generators used to synthesise evaluation workloads.

The paper evaluates on three real social networks (dblp, flickr, Y360)
that are not redistributable; :mod:`repro.graphs.datasets` builds
laptop-scale surrogates on top of the generators here.  All generators
are implemented from first principles (no networkx) and take explicit
seeds, so every experiment in the benchmark harness is reproducible
bit-for-bit.

Provided models:

* :func:`erdos_renyi` — G(n, p) via geometric edge skipping, O(n + m).
* :func:`barabasi_albert` — preferential attachment via the repeated-nodes
  trick.
* :func:`powerlaw_cluster` — Holme–Kim: preferential attachment plus
  triad-closure steps; produces heavy-tailed degrees *and* tunable
  clustering, which is what the dblp/flickr/Y360 surrogates need.
* :func:`watts_strogatz` — ring lattice with rewiring (small-world
  control case used in tests).
* :func:`configuration_model_powerlaw` — degree-targeted stub matching
  with self-loop/multi-edge rejection.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_probability


def erdos_renyi(n: int, p: float, *, seed=None) -> Graph:
    """G(n, p): each of the ``n(n-1)/2`` pairs is an edge with probability p.

    Uses geometric jumps between successive edges, so the cost is
    proportional to the number of edges generated rather than the number
    of pairs examined.
    """
    check_probability(p, "p")
    rng = as_rng(seed)
    g = Graph(n)
    if p == 0.0 or n < 2:
        return g
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                g.add_edge(u, v)
        return g
    total_pairs = n * (n - 1) // 2
    log_q = np.log1p(-p)
    idx = -1
    while True:
        # skip ~Geometric(p) pairs
        jump = 1 + int(np.floor(np.log(1.0 - rng.random()) / log_q))
        idx += jump
        if idx >= total_pairs:
            break
        # invert the lexicographic pair index
        u = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * idx)) // 2)
        offset = idx - (u * (2 * n - u - 1)) // 2
        v = u + 1 + int(offset)
        g.add_edge(u, v)
    return g


def _preferential_targets(
    repeated_nodes: list[int], m: int, rng: np.random.Generator
) -> set[int]:
    """Draw ``m`` distinct targets proportionally to degree (+1 smoothing)."""
    targets: set[int] = set()
    while len(targets) < m:
        targets.add(repeated_nodes[int(rng.integers(len(repeated_nodes)))])
    return targets


def barabasi_albert(n: int, m: int, *, seed=None) -> Graph:
    """Barabási–Albert preferential attachment.

    Starts from a star on ``m+1`` vertices, then attaches each new vertex
    to ``m`` existing vertices chosen proportionally to degree.
    """
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = as_rng(seed)
    g = Graph(n)
    repeated: list[int] = []
    for v in range(1, m + 1):
        g.add_edge(0, v)
        repeated.extend((0, v))
    for v in range(m + 1, n):
        for t in _preferential_targets(repeated, m, rng):
            g.add_edge(v, t)
            repeated.extend((v, t))
    return g


def powerlaw_cluster(n: int, m: int, triad_p: float, *, seed=None) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Each new vertex performs ``m`` attachment steps; after a preferential
    attachment to ``t``, with probability ``triad_p`` the *next* step
    closes a triangle by linking to a random neighbour of ``t`` instead of
    doing another preferential step.  Degrees follow a power law as in
    Barabási–Albert; ``triad_p`` tunes the clustering coefficient.
    """
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    check_probability(triad_p, "triad_p")
    rng = as_rng(seed)
    g = Graph(n)
    repeated: list[int] = []
    for v in range(1, m + 1):
        g.add_edge(0, v)
        repeated.extend((0, v))
    for v in range(m + 1, n):
        # first link is always preferential
        target = repeated[int(rng.integers(len(repeated)))]
        g.add_edge(v, target)
        repeated.extend((v, target))
        done = 1
        while done < m:
            close_triangle = rng.random() < triad_p
            candidate = -1
            if close_triangle:
                nbrs = [w for w in g.neighbors(target) if w != v and not g.has_edge(v, w)]
                if nbrs:
                    candidate = nbrs[int(rng.integers(len(nbrs)))]
            if candidate < 0:
                candidate = repeated[int(rng.integers(len(repeated)))]
                if candidate == v or g.has_edge(v, candidate):
                    continue
            g.add_edge(v, candidate)
            repeated.extend((v, candidate))
            target = candidate
            done += 1
    return g


def watts_strogatz(n: int, k: int, rewire_p: float, *, seed=None) -> Graph:
    """Watts–Strogatz ring lattice with random rewiring.

    ``k`` must be even; each vertex starts connected to its ``k`` nearest
    ring neighbours, then every edge's far endpoint is rewired with
    probability ``rewire_p`` to a uniform non-duplicate target.
    """
    if k % 2 != 0 or k < 2:
        raise ValueError(f"k must be even and >= 2, got {k}")
    if k >= n:
        raise ValueError(f"need k < n, got k={k}, n={n}")
    check_probability(rewire_p, "rewire_p")
    rng = as_rng(seed)
    g = Graph(n)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % n
            if not g.has_edge(v, u):
                g.add_edge(v, u)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % n
            if rng.random() >= rewire_p or not g.has_edge(v, u):
                continue
            # draw replacement avoiding self loops and duplicates
            for _ in range(16):
                w = int(rng.integers(n))
                if w != v and not g.has_edge(v, w):
                    g.remove_edge(v, u)
                    g.add_edge(v, w)
                    break
    return g


def powerlaw_degree_sequence(
    n: int, exponent: float, *, d_min: int = 1, d_max: int | None = None, seed=None
) -> np.ndarray:
    """Sample an even-sum degree sequence from a discrete power law.

    ``Pr(d) ∝ d^(−exponent)`` on ``[d_min, d_max]``; the sum is patched to
    even by incrementing one entry if needed, which is the standard
    configuration-model convention.
    """
    if exponent <= 1.0:
        raise ValueError(f"power-law exponent must be > 1, got {exponent}")
    rng = as_rng(seed)
    if d_max is None:
        d_max = max(d_min + 1, int(np.sqrt(n)))
    support = np.arange(d_min, d_max + 1, dtype=np.float64)
    weights = support ** (-exponent)
    probs = weights / weights.sum()
    degrees = rng.choice(np.arange(d_min, d_max + 1), size=n, p=probs)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(n))] += 1
    return degrees.astype(np.int64)


def configuration_model_edges(degrees: np.ndarray, *, seed=None) -> np.ndarray:
    """Edge array of an erased configuration model, fully vectorised.

    One shuffle of the stub vector, consecutive pairing, then array
    passes dropping self loops and collapsing parallel edges — the same
    *edge set* the former per-stub Python loop produced from the same
    seed (matching consumes the identical shuffle; rejection by
    ``has_edge`` and dedup-by-``unique`` both keep exactly the distinct
    non-loop pairs), but at paper scale (Table-1 sizes, hundreds of
    thousands of vertices) the loop is the difference between minutes
    and milliseconds.

    Returns
    -------
    numpy.ndarray
        ``(m, 2)`` int64 array, rows ``(u, v)`` with ``u < v``, sorted
        by pair code.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if np.any(degrees < 0):
        raise ValueError("degrees must be non-negative")
    if degrees.sum() % 2 != 0:
        raise ValueError("degree sum must be even")
    rng = as_rng(seed)
    n = len(degrees)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = len(stubs) // 2
    us = stubs[0 : 2 * half : 2]
    vs = stubs[1 : 2 * half : 2]
    keep = us != vs
    us, vs = us[keep], vs[keep]
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    codes = np.unique(lo * np.int64(n) + hi)
    return np.column_stack([codes // n, codes % n])


def configuration_model(degrees: np.ndarray, *, seed=None) -> Graph:
    """Simple-graph configuration model by stub matching with rejection.

    Pairs of stubs are matched uniformly at random; self loops and
    parallel edges are discarded, so realised degrees may fall slightly
    below the targets (standard erased configuration model).  Runs on
    the vectorised :func:`configuration_model_edges` matching.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    edges = configuration_model_edges(degrees, seed=seed)
    return Graph.from_edge_array(len(degrees), edges)


def configuration_model_powerlaw(
    n: int, exponent: float, *, d_min: int = 1, d_max: int | None = None, seed=None
) -> Graph:
    """Convenience wrapper: power-law degree sequence + configuration model."""
    rng = as_rng(seed)
    degrees = powerlaw_degree_sequence(n, exponent, d_min=d_min, d_max=d_max, seed=rng)
    return configuration_model(degrees, seed=rng)


def affiliation_graph(
    n: int,
    n_groups: int,
    group_size_probs: np.ndarray | list[float],
    *,
    novelty: float = 0.35,
    seed=None,
) -> Graph:
    """Affiliation (clique-union) network: groups of members, fully linked.

    Models co-authorship-style data directly: ``n_groups`` "papers"
    arrive in sequence; each draws a size ``s`` (``group_size_probs[i]``
    is the probability of size ``i + 2``) and picks members — a fresh
    uniform vertex with probability ``novelty``, otherwise an existing
    member proportionally to past participation (preferential
    attachment via the repeated-nodes list).  Members of a group are
    pairwise connected, so the graph is a union of overlapping cliques:
    heavy-tailed degrees *and* abundant triangles.

    Vertices never drawn remain isolated, as real co-authorship
    snapshots contain isolated authors unless pruned.
    """
    check_probability(novelty, "novelty")
    probs = np.asarray(group_size_probs, dtype=np.float64)
    if probs.size == 0 or np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
        raise ValueError("group_size_probs must be a probability vector")
    rng = as_rng(seed)
    g = Graph(n)
    repeated: list[int] = list(range(min(n, 50)))
    sizes = rng.choice(np.arange(2, 2 + probs.size), size=n_groups, p=probs)
    for s in sizes:
        members: set[int] = set()
        tries = 0
        while len(members) < s and tries < 50 * int(s):
            tries += 1
            if rng.random() < novelty:
                members.add(int(rng.integers(n)))
            else:
                members.add(repeated[int(rng.integers(len(repeated)))])
        group = sorted(members)
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                if not g.has_edge(u, v):
                    g.add_edge(u, v)
        repeated.extend(group)
    return g
