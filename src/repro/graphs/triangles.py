"""Triangle and connected-triple counting, clustering coefficient inputs.

The paper (§6.4) defines the clustering coefficient as

    S_CC[G] = T3[G] / T2[G]

where ``T3`` is the number of 3-cliques (triangles counted as vertex
*sets*) and ``T2`` the number of *connected triplets* — vertex sets
``{u, v, w}`` inducing at least two edges, each set counted **once**
(Example 3 of the paper: T2[K3] = 1, hence S_CC[K3] = 1).

This differs from the more common transitivity ``3·T3 / Σ_v C(d_v, 2)``;
both are provided, and the identity

    T2 = Σ_v C(d_v, 2) − 2·T3

(open triples are counted once per centre; triangle sets are counted three
times in the centre sum) converts between them.
"""

from __future__ import annotations

from repro.graphs.graph import Graph


def triangle_count(graph: Graph) -> int:
    """Number of triangles (3-cliques), each counted once.

    Uses the standard edge-iterator algorithm: for each edge ``(u, v)``
    with ``u < v`` count common neighbours ``w > v`` (ordering avoids
    double counting).  Complexity ``O(Σ_e min(d_u, d_v))``.
    """
    count = 0
    for u, v in graph.edges():
        nu, nv = graph.neighbors(u), graph.neighbors(v)
        small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
        for w in small:
            if w > v and w in large:
                count += 1
    return count


def centered_triple_count(graph: Graph) -> int:
    """Number of paths of length two, ``Σ_v C(d_v, 2)`` (per-centre count)."""
    return int(sum(d * (d - 1) // 2 for d in graph.degrees()))


def connected_triple_count(graph: Graph, *, triangles: int | None = None) -> int:
    """Number of vertex triples inducing ≥ 2 edges — the paper's ``T2``.

    Each qualifying vertex *set* is counted once.  A triangle appears three
    times in the per-centre sum, an open wedge once, hence
    ``T2 = Σ_v C(d_v, 2) − 2·T3``.
    """
    if triangles is None:
        triangles = triangle_count(graph)
    return centered_triple_count(graph) - 2 * triangles


def clustering_coefficient(graph: Graph) -> float:
    """The paper's clustering coefficient ``S_CC = T3 / T2``.

    Returns 0.0 when the graph has no connected triples (the statistic is
    conventionally zero on triangle-free, wedge-free graphs).
    """
    t3 = triangle_count(graph)
    t2 = connected_triple_count(graph, triangles=t3)
    if t2 == 0:
        return 0.0
    return t3 / t2


def local_clustering(graph: Graph, v: int) -> float:
    """Local clustering coefficient of ``v``: closed wedge fraction at v.

    ``c_v = #edges among N(v) / C(d_v, 2)``; conventionally 0 for
    degree < 2 vertices.
    """
    nbrs = sorted(graph.neighbors(v))
    d = len(nbrs)
    if d < 2:
        return 0.0
    links = 0
    for i, u in enumerate(nbrs):
        nu = graph.neighbors(u)
        for w in nbrs[i + 1 :]:
            if w in nu:
                links += 1
    return 2.0 * links / (d * (d - 1))


def average_local_clustering(graph: Graph) -> float:
    """Watts–Strogatz average of :func:`local_clustering` over all vertices.

    Not the paper's S_CC (which is :func:`clustering_coefficient`), but
    widely reported for the same real datasets, so exposed for
    cross-referencing published numbers.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    return sum(local_clustering(graph, v) for v in range(n)) / n


def transitivity(graph: Graph) -> float:
    """The common transitivity ``3·T3 / Σ_v C(d_v, 2)`` (networkx-compatible).

    Exposed for cross-validation against external tools; the experiment
    harness reports the paper's :func:`clustering_coefficient`.
    """
    centered = centered_triple_count(graph)
    if centered == 0:
        return 0.0
    return 3 * triangle_count(graph) / centered
