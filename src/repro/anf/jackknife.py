"""Jackknife standard errors over repeated randomized runs.

The paper (§6.3) repeats HyperANF with independent hash seeds and uses
jackknifing [26] to attach a standard error to each derived statistic
(reporting drifts of 0.2–2%).  The estimator: for samples
``x_1, ..., x_r`` and a statistic ``θ``, compute the leave-one-out
values ``θ_i = θ(all but x_i)``; then

    SE = sqrt( (r−1)/r · Σ_i (θ_i − θ̄)² )

where ``θ̄`` is the mean of the leave-one-out values.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np


def jackknife(
    samples: Sequence, statistic: Callable[[Sequence], float]
) -> tuple[float, float]:
    """Jackknife a statistic of a sample collection.

    Parameters
    ----------
    samples:
        ``r ≥ 2`` independent run outputs (any objects the statistic
        accepts a list of).
    statistic:
        Maps a list of samples to a scalar (e.g. ``lambda runs:
        np.mean([effective_diameter(h) for h in runs])``).

    Returns
    -------
    (estimate, standard_error):
        The full-sample statistic and its jackknife SE.
    """
    r = len(samples)
    if r < 2:
        raise ValueError(f"jackknife needs at least 2 samples, got {r}")
    full = float(statistic(list(samples)))
    loo = np.array(
        [
            float(statistic([s for j, s in enumerate(samples) if j != i]))
            for i in range(r)
        ]
    )
    centre = loo.mean()
    se = math.sqrt((r - 1) / r * float(((loo - centre) ** 2).sum()))
    return full, se


def jackknife_mean(values: Sequence[float]) -> tuple[float, float]:
    """Jackknife of the sample mean (reduces to the classic SEM formula)."""
    arr = np.asarray(list(values), dtype=np.float64)
    return jackknife(arr, lambda xs: float(np.mean(xs)))
