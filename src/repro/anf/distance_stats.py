"""Distance histograms and statistics from HyperANF output.

Converts a :class:`~repro.anf.hyperanf.NeighbourhoodFunction` into the
:class:`~repro.stats.distance.DistanceHistogram` consumed by all the
§6.3 statistics, so the exact-BFS and ANF backends are interchangeable
in the registry and the experiment harness.
"""

from __future__ import annotations

import numpy as np

from repro.anf.hyperanf import NeighbourhoodFunction, hyperanf
from repro.graphs.graph import Graph
from repro.stats.distance import DistanceHistogram


def neighbourhood_function_to_histogram(
    nf: NeighbourhoodFunction, n: int
) -> DistanceHistogram:
    """Differentiate N(t) into per-distance (unordered) pair counts.

    ``N(t) − N(t−1)`` estimates the ordered pairs at distance exactly
    ``t``; halving gives unordered counts.  Estimation noise can make
    increments slightly negative — they are clamped to 0, and the
    disconnected-pair count is derived from the total so the histogram
    stays consistent.
    """
    values = np.asarray(nf.values, dtype=np.float64)
    counts = np.zeros(len(values), dtype=np.float64)
    if len(values) > 1:
        increments = np.diff(values)
        counts[1:] = np.maximum(increments, 0.0) / 2.0
    total_pairs = n * (n - 1) / 2.0
    disconnected = max(0.0, total_pairs - counts.sum())
    return DistanceHistogram(counts=counts, disconnected=disconnected, exact=False)


def anf_distance_histogram(
    graph: Graph, *, b: int = 6, seed: int = 0, max_steps: int | None = None
) -> DistanceHistogram:
    """One-shot: run HyperANF and return the distance histogram."""
    nf = hyperanf(graph, b=b, seed=seed, max_steps=max_steps)
    return neighbourhood_function_to_histogram(nf, graph.num_vertices)
