"""HyperANF: neighbourhood-function estimation by register diffusion.

HyperANF [3] maintains one HyperLogLog counter per vertex, initialised
to the singleton ``{v}``; at step ``t`` every counter absorbs (register
max) its neighbours' counters, after which row ``v`` summarises the ball
``B(v, t)``.  The *neighbourhood function* ``N(t) = Σ_v |B(v, t)|``
(estimated) then yields the whole distance distribution:

    #ordered pairs at distance exactly t  =  N(t) − N(t−1)

Convergence is exact in register space: when no register changes during
a step, no later step can change anything, so iteration stops — and the
largest t with an actual register change is the paper's diameter lower
bound ``S_DiamLB``.

The default :func:`hyperanf` runs the kernel first built for the
multi-world engine (:mod:`repro.worlds.anf_batch`), backported to the
single-graph case: the union step is a *degree-grouped segmented max*
(vertices bucketed by neighbour count, each bucket's gathered rows
reduced with one ``max(axis=1)``), only the *change frontier* — rows
with a neighbour that changed last step — is recomputed per step, and
per-row cardinality estimates are cached so the ``N(t)`` bookkeeping
touches changed rows only.  Registers, ``N(t)`` values and convergence
step are identical to the original edge-wise ``np.maximum.at`` sweep,
which survives as :func:`hyperanf_edgewise` — the pinned ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anf.hyperloglog import estimate_many, init_registers
from repro.graphs.graph import Graph
from repro.graphs.traversal import multi_range


@dataclass(frozen=True)
class NeighbourhoodFunction:
    """Result of one HyperANF run.

    Attributes
    ----------
    values:
        ``values[t] ≈ N(t)`` — estimated number of *ordered* vertex pairs
        (including ``u == u``) within distance ``t``; index 0 equals the
        estimate of ``n``.
    converged_at:
        The step at which registers stabilised; also the estimated
        diameter lower bound.
    """

    values: np.ndarray
    converged_at: int

    @property
    def diameter_lower_bound(self) -> int:
        """Largest distance at which some ball still grew (S_DiamLB)."""
        return self.converged_at


def hyperanf(
    graph: Graph,
    *,
    b: int = 6,
    seed: int = 0,
    max_steps: int | None = None,
) -> NeighbourhoodFunction:
    """Run HyperANF on ``graph`` (degree-grouped frontier kernel).

    Parameters
    ----------
    graph:
        Undirected graph (the diffusion uses both edge directions).
    b:
        HyperLogLog register-index bits (accuracy ``≈ 1.04/√(2^b)`` per
        ball estimate; systematic noise largely cancels in the N(t)
        increments).
    seed:
        Hash seed; use different seeds for independent runs when
        jackknifing (§6.3 protocol).
    max_steps:
        Safety cap on diffusion steps (default ``n``).

    Returns
    -------
    NeighbourhoodFunction
        Identical to :func:`hyperanf_edgewise` output (pinned by the
        backport equivalence tests): the register max is exact in
        ``uint8``, a row can only change when a neighbour changed the
        step before (the frontier invariant), and per-row estimates are
        pure functions of row content, so caching them preserves every
        ``N(t)`` bit-for-bit.
    """
    n = graph.num_vertices
    if n == 0:
        return NeighbourhoodFunction(values=np.zeros(1), converged_at=0)
    if max_steps is None:
        max_steps = n
    regs = init_registers(n, b=b, seed=seed)
    m = regs.shape[1]
    indptr, indices = graph.to_csr()
    degs = np.diff(indptr)

    row_est = estimate_many(regs)
    values = [float(row_est.sum())]
    converged_at = max_steps
    frontier = np.ones(n, dtype=bool)
    for step in range(1, max_steps + 1):
        rows = np.flatnonzero(frontier & (degs > 0))
        # Degree-grouped segmented max: bucket the frontier rows by
        # neighbour count; each bucket's gathered neighbour registers
        # reshape to (rows, d, 2^b) and reduce in one max(axis=1).
        order = np.argsort(degs[rows], kind="stable")
        rows = rows[order]
        rows_degs = degs[rows]
        neighbour_ids = indices[multi_range(indptr[rows], rows_degs)]
        # One gather snapshots the pre-step registers, making the
        # in-place per-bucket updates synchronous — identical to the
        # edge-wise copy-and-merge.
        gathered = regs[neighbour_ids]
        bounds = np.concatenate(
            [[0], np.flatnonzero(np.diff(rows_degs)) + 1, [len(rows)]]
        )
        elem_offsets = np.cumsum(rows_degs) - rows_degs
        changed_chunks = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if lo == hi:
                continue
            d = int(rows_degs[lo])
            rows_d = rows[lo:hi]
            seg = gathered[elem_offsets[lo] : elem_offsets[lo] + d * (hi - lo)]
            seg = seg.reshape(hi - lo, d, m).max(axis=1)
            old = regs[rows_d]
            grew = (seg > old).any(axis=1)
            if grew.any():
                rows_g = rows_d[grew]
                regs[rows_g] = np.maximum(old[grew], seg[grew])
                changed_chunks.append(rows_g)
        if not changed_chunks:
            converged_at = step - 1  # nothing changed this step
            break
        changed_rows = np.concatenate(changed_chunks)
        row_est[changed_rows] = estimate_many(regs[changed_rows])
        values.append(float(row_est.sum()))
        # Next step's frontier: neighbours of rows that just changed.
        with_nbrs = changed_rows[degs[changed_rows] > 0]
        frontier = np.zeros(n, dtype=bool)
        if len(with_nbrs):
            frontier[indices[multi_range(indptr[with_nbrs], degs[with_nbrs])]] = True
    return NeighbourhoodFunction(
        values=np.asarray(values), converged_at=converged_at
    )


def hyperanf_edgewise(
    graph: Graph,
    *,
    b: int = 6,
    seed: int = 0,
    max_steps: int | None = None,
) -> NeighbourhoodFunction:
    """Original edge-wise HyperANF sweep (``np.maximum.at`` per step).

    Pinned ground truth for the degree-grouped frontier kernel of
    :func:`hyperanf`; recomputes every row's merge and the full
    ``N(t)`` estimate each step.
    """
    n = graph.num_vertices
    if n == 0:
        return NeighbourhoodFunction(values=np.zeros(1), converged_at=0)
    if max_steps is None:
        max_steps = n
    regs = init_registers(n, b=b, seed=seed)
    edges = graph.edge_array()
    us, vs = edges[:, 0], edges[:, 1]

    values = [float(estimate_many(regs).sum())]
    step = 0
    for step in range(1, max_steps + 1):
        new = regs.copy()
        if len(us):
            np.maximum.at(new, us, regs[vs])
            np.maximum.at(new, vs, regs[us])
        if np.array_equal(new, regs):
            step -= 1  # nothing changed this step
            break
        regs = new
        values.append(float(estimate_many(regs).sum()))
    return NeighbourhoodFunction(values=np.asarray(values), converged_at=step)
