"""HyperANF: neighbourhood-function estimation by register diffusion.

HyperANF [3] maintains one HyperLogLog counter per vertex, initialised
to the singleton ``{v}``; at step ``t`` every counter absorbs (register
max) its neighbours' counters, after which row ``v`` summarises the ball
``B(v, t)``.  The *neighbourhood function* ``N(t) = Σ_v |B(v, t)|``
(estimated) then yields the whole distance distribution:

    #ordered pairs at distance exactly t  =  N(t) − N(t−1)

Convergence is exact in register space: when no register changes during
a step, no later step can change anything, so iteration stops — and the
largest t with an actual register change is the paper's diameter lower
bound ``S_DiamLB``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anf.hyperloglog import estimate_many, init_registers
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class NeighbourhoodFunction:
    """Result of one HyperANF run.

    Attributes
    ----------
    values:
        ``values[t] ≈ N(t)`` — estimated number of *ordered* vertex pairs
        (including ``u == u``) within distance ``t``; index 0 equals the
        estimate of ``n``.
    converged_at:
        The step at which registers stabilised; also the estimated
        diameter lower bound.
    """

    values: np.ndarray
    converged_at: int

    @property
    def diameter_lower_bound(self) -> int:
        """Largest distance at which some ball still grew (S_DiamLB)."""
        return self.converged_at


def hyperanf(
    graph: Graph,
    *,
    b: int = 6,
    seed: int = 0,
    max_steps: int | None = None,
) -> NeighbourhoodFunction:
    """Run HyperANF on ``graph``.

    Parameters
    ----------
    graph:
        Undirected graph (the diffusion uses both edge directions).
    b:
        HyperLogLog register-index bits (accuracy ``≈ 1.04/√(2^b)`` per
        ball estimate; systematic noise largely cancels in the N(t)
        increments).
    seed:
        Hash seed; use different seeds for independent runs when
        jackknifing (§6.3 protocol).
    max_steps:
        Safety cap on diffusion steps (default ``n``).

    Returns
    -------
    NeighbourhoodFunction
    """
    n = graph.num_vertices
    if n == 0:
        return NeighbourhoodFunction(values=np.zeros(1), converged_at=0)
    if max_steps is None:
        max_steps = n
    regs = init_registers(n, b=b, seed=seed)
    edges = graph.edge_array()
    us, vs = edges[:, 0], edges[:, 1]

    values = [float(estimate_many(regs).sum())]
    step = 0
    for step in range(1, max_steps + 1):
        new = regs.copy()
        if len(us):
            np.maximum.at(new, us, regs[vs])
            np.maximum.at(new, vs, regs[us])
        if np.array_equal(new, regs):
            step -= 1  # nothing changed this step
            break
        regs = new
        values.append(float(estimate_many(regs).sum()))
    return NeighbourhoodFunction(values=np.asarray(values), converged_at=step)
