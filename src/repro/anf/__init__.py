"""HyperANF / HyperLogLog substrate for distance statistics on big graphs."""

from repro.anf.distance_stats import (
    anf_distance_histogram,
    neighbourhood_function_to_histogram,
)
from repro.anf.hyperanf import (
    NeighbourhoodFunction,
    hyperanf,
    hyperanf_edgewise,
)
from repro.anf.hyperloglog import (
    HyperLogLog,
    estimate_many,
    init_registers,
    splitmix64,
)
from repro.anf.jackknife import jackknife, jackknife_mean

__all__ = [
    "HyperLogLog",
    "splitmix64",
    "init_registers",
    "estimate_many",
    "hyperanf",
    "hyperanf_edgewise",
    "NeighbourhoodFunction",
    "anf_distance_histogram",
    "neighbourhood_function_to_histogram",
    "jackknife",
    "jackknife_mean",
]
