"""HyperLogLog cardinality counters — the registers behind HyperANF.

A HyperLogLog counter summarises a set with ``m = 2^b`` 5-bit-ish
registers; the union of two sets is the elementwise *max* of their
registers, which is the property HyperANF exploits to propagate
reachability balls along edges (Boldi, Rosa, Vigna, WWW'11 [3]).

Two layers are provided:

* :class:`HyperLogLog` — a standalone counter for arbitrary hashable
  items (add / merge / estimate), used directly in tests and examples;
* vectorised helpers (:func:`init_registers`, :func:`estimate_many`)
  operating on an ``(n, m)`` uint8 matrix — one row per graph vertex —
  which is the layout the HyperANF diffusion kernel needs.

Hashing is splitmix64, implemented with wrap-around uint64 arithmetic,
so results are deterministic across platforms and seeds are honoured.
"""

from __future__ import annotations

import numpy as np

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finaliser: a fast, well-mixed 64-bit hash.

    Operates elementwise on a uint64 array (wrap-around semantics).
    """
    x = x.astype(np.uint64)
    with np.errstate(over="ignore"):
        x = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
        x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
        x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
        x = x ^ (x >> np.uint64(31))
    return x


def _alpha(m: int) -> float:
    """Bias-correction constant α_m of the HLL estimator."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


def _rho(w: np.ndarray, max_rho: int) -> np.ndarray:
    """Position of the least-significant set bit, 1-based, capped.

    ``w == 0`` maps to the cap (all usable bits were zero).
    """
    out = np.full(w.shape, max_rho, dtype=np.uint8)
    remaining = w.copy()
    pos = np.ones(w.shape, dtype=np.uint8)
    unresolved = remaining != 0
    # loop over bit positions; terminates in <= max_rho iterations
    while unresolved.any():
        low_bit = (remaining & np.uint64(1)).astype(bool)
        newly = unresolved & low_bit
        out[newly] = np.minimum(pos[newly], max_rho)
        unresolved &= ~low_bit
        remaining >>= np.uint64(1)
        pos += np.uint8(1)
        if int(pos.flat[0]) > max_rho:
            break
    return out


def init_registers(n: int, *, b: int = 6, seed: int = 0) -> np.ndarray:
    """Register matrix for ``n`` singleton sets ``{0}, {1}, ..., {n-1}``.

    Row ``v`` is the HLL summary of the set ``{v}`` — the radius-0
    reachability ball.  ``b`` register-index bits give ``m = 2^b``
    registers and relative standard error ``≈ 1.04/√m`` (≈ 13% at the
    default ``b = 6``; the paper's setup note reports HyperANF drifts of
    0.2–2% after jackknifing multiple runs).

    Parameters
    ----------
    n:
        Number of vertices.
    b:
        Register-index bits; ``4 ≤ b ≤ 16``.
    seed:
        Mixed into the hash so that independent runs (for jackknifing)
        see independent register noise.
    """
    if not 4 <= b <= 16:
        raise ValueError(f"b must be in [4, 16], got {b}")
    m = 1 << b
    ids = np.arange(n, dtype=np.uint64)
    hashed = splitmix64(ids ^ splitmix64(np.full(n, seed, dtype=np.uint64)))
    bucket = (hashed & np.uint64(m - 1)).astype(np.int64)
    w = hashed >> np.uint64(b)
    max_rho = 64 - b + 1
    rho = _rho(w, max_rho)
    regs = np.zeros((n, m), dtype=np.uint8)
    regs[np.arange(n), bucket] = rho
    return regs


#: ``2^-r`` for every possible uint8 register value — the estimator's
#: only transcendental, tabulated once.  Entries are exact powers of two,
#: so the lookup is bit-identical to calling ``np.exp2`` elementwise.
_EXP2_NEG = np.exp2(-np.arange(256, dtype=np.float64))


def estimate_many(regs: np.ndarray) -> np.ndarray:
    """Cardinality estimate per row of a register matrix.

    Applies the standard HLL estimator with the small-range (linear
    counting) correction; the large-range correction is unnecessary with
    64-bit hashes at graph scales.
    """
    regs = np.asarray(regs)
    if regs.ndim == 1:
        regs = regs[None, :]
    n_rows, m = regs.shape
    alpha = _alpha(m)
    power = (
        _EXP2_NEG[regs]
        if regs.dtype == np.uint8
        else np.exp2(-regs.astype(np.float64))
    )
    raw = alpha * m * m / power.sum(axis=1)
    zeros = (regs == 0).sum(axis=1)
    small = (raw <= 2.5 * m) & (zeros > 0)
    with np.errstate(divide="ignore"):
        linear = m * np.log(m / np.maximum(zeros, 1).astype(np.float64))
    out = np.where(small, linear, raw)
    return out


class HyperLogLog:
    """A standalone HyperLogLog counter for hashable items.

    Parameters
    ----------
    b:
        Register-index bits (``m = 2^b`` registers).
    seed:
        Hash seed; counters must share a seed to be merged.

    Examples
    --------
    >>> hll = HyperLogLog(b=10)
    >>> for i in range(1000):
    ...     hll.add(i)
    >>> 850 < hll.estimate() < 1150   # ~3% typical error at b=10
    True
    """

    def __init__(self, *, b: int = 10, seed: int = 0):
        if not 4 <= b <= 16:
            raise ValueError(f"b must be in [4, 16], got {b}")
        self._b = b
        self._m = 1 << b
        self._seed = seed
        self._regs = np.zeros(self._m, dtype=np.uint8)

    @property
    def registers(self) -> np.ndarray:
        """The raw register array (read-only copy)."""
        return self._regs.copy()

    def add(self, item) -> None:
        """Insert one hashable item."""
        raw = np.array([hash(item) & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        hashed = splitmix64(raw ^ splitmix64(np.array([self._seed], dtype=np.uint64)))
        bucket = int(hashed[0] & np.uint64(self._m - 1))
        w = hashed >> np.uint64(self._b)
        rho = int(_rho(w, 64 - self._b + 1)[0])
        if rho > self._regs[bucket]:
            self._regs[bucket] = rho

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union with another counter (elementwise register max)."""
        if other._b != self._b or other._seed != self._seed:
            raise ValueError("can only merge counters with equal b and seed")
        merged = HyperLogLog(b=self._b, seed=self._seed)
        merged._regs = np.maximum(self._regs, other._regs)
        return merged

    def estimate(self) -> float:
        """Estimated number of distinct items added."""
        return float(estimate_many(self._regs[None, :])[0])
