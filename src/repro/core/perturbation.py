"""The perturbation distribution ``R_σ`` (Equation 6) and its sampler.

``R_σ`` is the standard normal ``N(0, σ²)`` truncated to ``[0, 1]`` —
i.e. density proportional to ``exp(-r²/(2σ²))`` on the unit interval.
Small σ concentrates mass near 0 (little injected uncertainty); large σ
flattens towards uniform.

The vectorised sampler supports a *different* σ per element because
Algorithm 2 redistributes the global budget into per-pair ``σ(e)``
values (Eq. 7).  Strategy:

* ``σ = 0`` → exactly 0 (no perturbation).
* ``σ ≥ UNIFORM_THRESHOLD`` → uniform on [0, 1]; at σ = 8 the density
  ratio between the endpoints is ``exp(-1/128) ≈ 0.992``, so the
  truncated normal is within 0.8% of uniform and rejection would waste
  ~10 draws per sample for no accuracy gain.
* otherwise → rejection sampling from ``|N(0, σ)|`` with acceptance
  ``erf(1/(σ√2))`` (≥ 0.68 for σ ≤ 1), which is exact and needs no
  inverse-erf dependency.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_rng

#: σ above which R_σ is replaced by the uniform distribution (see module
#: docstring for the accuracy argument).
UNIFORM_THRESHOLD = 8.0

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def truncated_normal_pdf(r: np.ndarray, sigma: float) -> np.ndarray:
    """Density of ``R_σ`` (Equation 6): Gaussian renormalised on [0, 1]."""
    r = np.asarray(r, dtype=np.float64)
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0:
        raise ValueError("R_0 is a point mass at 0; density undefined")
    # ∫_0^1 φ_{0,σ} = erf(1/(σ√2)) / 2
    mass = 0.5 * math.erf(1.0 / (sigma * _SQRT2))
    density = np.exp(-(r**2) / (2.0 * sigma * sigma)) / (sigma * _SQRT_2PI)
    out = np.where((r >= 0.0) & (r <= 1.0), density / mass, 0.0)
    return out


def truncated_normal_cdf(r: np.ndarray, sigma: float) -> np.ndarray:
    """CDF of ``R_σ`` on [0, 1] (clamped outside)."""
    r = np.asarray(r, dtype=np.float64)
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    total = math.erf(1.0 / (sigma * _SQRT2))
    clipped = np.clip(r, 0.0, 1.0)
    flat = np.ravel(clipped)
    vals = np.array([math.erf(x / (sigma * _SQRT2)) for x in flat])
    return vals.reshape(np.shape(clipped)) / total


def truncated_normal_mean(sigma: float) -> float:
    """Exact mean of ``R_σ``: ``σ·√(2/π)·(1 - e^{-1/(2σ²)}) / erf(1/(σ√2))``."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    num = sigma * math.sqrt(2.0 / math.pi) * (1.0 - math.exp(-1.0 / (2.0 * sigma**2)))
    return num / math.erf(1.0 / (sigma * _SQRT2))


def sample_perturbations(sigmas: np.ndarray, *, seed=None) -> np.ndarray:
    """Draw one ``r_e ~ R_{σ(e)}`` per entry of ``sigmas``.

    Parameters
    ----------
    sigmas:
        Per-pair spread parameters, each ≥ 0 (0 yields exactly 0).
    seed:
        Anything accepted by :func:`repro.utils.as_rng`.

    Returns
    -------
    numpy.ndarray
        Samples in ``[0, 1]``, same shape as ``sigmas``.
    """
    sigmas = np.asarray(sigmas, dtype=np.float64)
    if sigmas.size and sigmas.min() < 0:
        raise ValueError("sigma values must be non-negative")
    rng = as_rng(seed)
    out = np.zeros(sigmas.shape, dtype=np.float64)

    flat_sigma = sigmas.ravel()
    flat_out = out.ravel()

    uniform_mask = flat_sigma >= UNIFORM_THRESHOLD
    if uniform_mask.any():
        flat_out[uniform_mask] = rng.random(int(uniform_mask.sum()))

    todo = np.flatnonzero((flat_sigma > 0.0) & ~uniform_mask)
    while todo.size:
        draws = np.abs(rng.normal(0.0, flat_sigma[todo]))
        accepted = draws <= 1.0
        flat_out[todo[accepted]] = draws[accepted]
        todo = todo[~accepted]
    return flat_out.reshape(sigmas.shape)


def sample_perturbation(sigma: float, *, seed=None) -> float:
    """Scalar convenience wrapper around :func:`sample_perturbations`."""
    return float(sample_perturbations(np.array([sigma]), seed=seed)[0])
