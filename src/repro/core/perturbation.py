"""The perturbation distribution ``R_σ`` (Equation 6) and its sampler.

``R_σ`` is the standard normal ``N(0, σ²)`` truncated to ``[0, 1]`` —
i.e. density proportional to ``exp(-r²/(2σ²))`` on the unit interval.
Small σ concentrates mass near 0 (little injected uncertainty); large σ
flattens towards uniform.

The vectorised sampler supports a *different* σ per element because
Algorithm 2 redistributes the global budget into per-pair ``σ(e)``
values (Eq. 7).  Strategy:

* ``σ = 0`` → exactly 0 (no perturbation).
* ``σ ≥ UNIFORM_THRESHOLD`` → uniform on [0, 1]; at σ = 8 the density
  ratio between the endpoints is ``exp(-1/128) ≈ 0.992``, so the
  truncated normal is within 0.8% of uniform and rejection would waste
  ~10 draws per sample for no accuracy gain.
* otherwise → rejection sampling from ``|N(0, σ)|`` with acceptance
  ``erf(1/(σ√2))`` (≥ 0.68 for σ ≤ 1), which is exact and needs no
  inverse-erf dependency.

Two additions serve the ``stream="pair_keyed"`` perturbation mode of
Algorithm 2 (:mod:`repro.core.generate`):

* an **inverse-CDF sampler** (:func:`perturbations_from_uniforms` on top
  of :func:`erfinv_array`) that maps one uniform per pair straight
  through ``R_σ⁻¹`` in a single vectorised pass — no redraw rounds, even
  in the σ ≈ 4–8 band where the rejection acceptance collapses towards
  ``erf(1/(σ√2)) ≈ 0.1``;
* **counter-based pair substreams** (:func:`pair_stream_uniforms`): each
  pair code acts as the counter of its own keyed stream (Salmon et al.,
  "Parallel Random Numbers: As Easy as 1, 2, 3", SC'11), so a pair's
  draw is a pure function of ``(key, pair code, substream)`` — invariant
  to attempt order and to which *other* pairs share the candidate set.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from repro.core.degree_distribution import erf_array
from repro.utils.rng import as_rng

#: σ above which R_σ is replaced by the uniform distribution (see module
#: docstring for the accuracy argument).
UNIFORM_THRESHOLD = 8.0

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def truncated_normal_pdf(r: np.ndarray, sigma: float) -> np.ndarray:
    """Density of ``R_σ`` (Equation 6): Gaussian renormalised on [0, 1]."""
    r = np.asarray(r, dtype=np.float64)
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0:
        raise ValueError("R_0 is a point mass at 0; density undefined")
    # ∫_0^1 φ_{0,σ} = erf(1/(σ√2)) / 2
    mass = 0.5 * math.erf(1.0 / (sigma * _SQRT2))
    density = np.exp(-(r**2) / (2.0 * sigma * sigma)) / (sigma * _SQRT_2PI)
    out = np.where((r >= 0.0) & (r <= 1.0), density / mass, 0.0)
    return out


def truncated_normal_cdf(r: np.ndarray, sigma: float) -> np.ndarray:
    """CDF of ``R_σ`` on [0, 1] (clamped outside)."""
    r = np.asarray(r, dtype=np.float64)
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    total = math.erf(1.0 / (sigma * _SQRT2))
    clipped = np.clip(r, 0.0, 1.0)
    flat = np.ravel(clipped)
    vals = np.array([math.erf(x / (sigma * _SQRT2)) for x in flat])
    return vals.reshape(np.shape(clipped)) / total


def truncated_normal_mean(sigma: float) -> float:
    """Exact mean of ``R_σ``: ``σ·√(2/π)·(1 - e^{-1/(2σ²)}) / erf(1/(σ√2))``."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    num = sigma * math.sqrt(2.0 / math.pi) * (1.0 - math.exp(-1.0 / (2.0 * sigma**2)))
    return num / math.erf(1.0 / (sigma * _SQRT2))


def sample_perturbations(sigmas: np.ndarray, *, seed=None) -> np.ndarray:
    """Draw one ``r_e ~ R_{σ(e)}`` per entry of ``sigmas``.

    Parameters
    ----------
    sigmas:
        Per-pair spread parameters, each ≥ 0 (0 yields exactly 0).
    seed:
        Anything accepted by :func:`repro.utils.as_rng`.

    Returns
    -------
    numpy.ndarray
        Samples in ``[0, 1]``, same shape as ``sigmas``.
    """
    sigmas = np.asarray(sigmas, dtype=np.float64)
    if sigmas.size and sigmas.min() < 0:
        raise ValueError("sigma values must be non-negative")
    rng = as_rng(seed)
    out = np.zeros(sigmas.shape, dtype=np.float64)

    flat_sigma = sigmas.ravel()
    flat_out = out.ravel()

    uniform_mask = flat_sigma >= UNIFORM_THRESHOLD
    if uniform_mask.any():
        flat_out[uniform_mask] = rng.random(int(uniform_mask.sum()))

    todo = np.flatnonzero((flat_sigma > 0.0) & ~uniform_mask)
    while todo.size:
        draws = np.abs(rng.normal(0.0, flat_sigma[todo]))
        accepted = draws <= 1.0
        flat_out[todo[accepted]] = draws[accepted]
        todo = todo[~accepted]
    return flat_out.reshape(sigmas.shape)


def sample_perturbation(sigma: float, *, seed=None) -> float:
    """Scalar convenience wrapper around :func:`sample_perturbations`."""
    return float(sample_perturbations(np.array([sigma]), seed=seed)[0])


# ---------------------------------------------------------------------------
# Inverse-CDF sampling (the pair-keyed stream's one-pass sampler)
# ---------------------------------------------------------------------------

_SQRT_PI_OVER_2 = math.sqrt(math.pi) / 2.0

#: Newton refinement rounds in :func:`erfinv_newton`.  The polynomial
#: initial guess is accurate to ~1e-7; each Newton step on the exact
#: ``erf`` squares the error, so two rounds reach ~1e-14 and the third
#: pins the result at the accuracy of the underlying ``erf_array``
#: (machine precision with SciPy, ≤1.5e-7 with the rational fallback).
_ERFINV_NEWTON_ROUNDS = 3

try:  # SciPy ships a C-loop erfinv; the Newton fallback keeps the
    from scipy.special import erfinv as _erfinv_ufunc  # dependency optional.
except ImportError:  # pragma: no cover - exercised only without scipy
    _erfinv_ufunc = None


def erfinv_newton(y: np.ndarray) -> np.ndarray:
    """Elementwise inverse error function — pure-NumPy Newton path.

    A polynomial initial guess (Giles, "Approximating the erfinv
    function", GPU Computing Gems 2010 — central/tail branches on
    ``w = -ln(1-y²)``) is polished by :data:`_ERFINV_NEWTON_ROUNDS`
    Newton steps on :func:`repro.core.degree_distribution.erf_array`:
    ``x ← x - (erf(x) - y)·(√π/2)·exp(x²)``.  With SciPy's ``erf`` the
    result matches ``scipy.special.erfinv`` to ≤1e-12 for
    ``|y| ≤ 1 - 1e-4`` and the roundtrip ``erf(erfinv(y)) = y`` holds to
    a few ulps everywhere ``erf`` is unsaturated (pinned by the sampler
    tests); deeper in the tail the residual ``erf(x) - y`` cancels
    catastrophically and accuracy degrades as ``~1e-16·exp(x²)`` — the
    information-theoretic limit of inverting float64 ``erf`` without an
    ``erfc`` channel.  ``y = ±1`` maps to ``±inf`` and ``|y| > 1`` to
    NaN, mirroring SciPy.
    """
    y = np.asarray(y, dtype=np.float64)
    a = np.abs(y)
    out = np.full(y.shape, np.nan, dtype=np.float64)
    boundary = a == 1.0
    out[boundary] = np.sign(y[boundary]) * np.inf
    inner = a < 1.0
    if not inner.any():
        return out
    x = y[inner]
    with np.errstate(divide="ignore"):
        w = -np.log1p(-(x * x))
    central = w < 5.0
    wc = np.where(central, w - 2.5, 0.0)
    pc = np.full_like(wc, 2.81022636e-08)
    for coeff in (
        3.43273939e-07,
        -3.5233877e-06,
        -4.39150654e-06,
        0.00021858087,
        -0.00125372503,
        -0.00417768164,
        0.246640727,
        1.50140941,
    ):
        pc = coeff + pc * wc
    wt = np.where(central, 9.0, w)
    wt = np.sqrt(wt) - 3.0
    pt = np.full_like(wt, -0.000200214257)
    for coeff in (
        0.000100950558,
        0.00134934322,
        -0.00367342844,
        0.00573950773,
        -0.0076224613,
        0.00943887047,
        1.00167406,
        2.83297682,
    ):
        pt = coeff + pt * wt
    guess = np.where(central, pc, pt) * x
    for _ in range(_ERFINV_NEWTON_ROUNDS):
        e = erf_array(guess)
        # Where float64 erf saturates to ±1 while |y| < 1 (|x| ≳ 5.86),
        # the residual no longer carries information and Newton would
        # walk off; the polynomial guess stands there.
        live = np.abs(e) < 1.0
        if not live.any():
            break
        g = guess[live]
        guess[live] = g - (e[live] - x[live]) * _SQRT_PI_OVER_2 * np.exp(g * g)
    out[inner] = guess
    return out


def erfinv_array(y: np.ndarray) -> np.ndarray:
    """Elementwise ``erfinv`` (SciPy ufunc when available, else Newton).

    The dispatch mirrors :func:`repro.core.degree_distribution.erf_array`:
    environments without SciPy fall back to :func:`erfinv_newton`, which
    the sampler tests pin against the SciPy path where available.
    """
    if _erfinv_ufunc is not None:
        return np.asarray(_erfinv_ufunc(y), dtype=np.float64)
    return erfinv_newton(y)


def truncated_normal_ppf(u: np.ndarray, sigmas: np.ndarray) -> np.ndarray:
    """Inverse CDF of ``R_σ``: ``r = σ√2·erfinv(u·erf(1/(σ√2)))``.

    Vectorised over per-element σ with the same regime split as
    :func:`sample_perturbations`: ``σ = 0`` yields exactly 0 and
    ``σ ≥`` :data:`UNIFORM_THRESHOLD` passes the uniform through
    unchanged (the distribution the rejection path samples there).
    Outputs are clipped to ``[0, 1]`` — by construction
    ``u·erf(1/(σ√2)) ≤ erf(1/(σ√2))`` keeps ``r ≤ 1``, the clip only
    guards the last-ulp rounding of the σ where ``erf`` saturates.

    Parameters
    ----------
    u:
        Uniforms in ``[0, 1)``, one per element.
    sigmas:
        Per-element spread parameters, each ≥ 0, same shape as ``u``.
    """
    u = np.asarray(u, dtype=np.float64)
    sigmas = np.asarray(sigmas, dtype=np.float64)
    if u.shape != sigmas.shape:
        raise ValueError("u and sigmas must have the same shape")
    if u.size and (u.min() < 0.0 or u.max() >= 1.0):
        raise ValueError("uniforms must lie in [0, 1)")
    if sigmas.size and sigmas.min() < 0:
        raise ValueError("sigma values must be non-negative")
    out = np.zeros(u.shape, dtype=np.float64)
    flat_u, flat_sigma, flat_out = u.ravel(), sigmas.ravel(), out.ravel()
    uniform = flat_sigma >= UNIFORM_THRESHOLD
    if uniform.any():
        flat_out[uniform] = flat_u[uniform]
    todo = np.flatnonzero((flat_sigma > 0.0) & ~uniform)
    if todo.size:
        sig = flat_sigma[todo]
        total = erf_array(1.0 / (sig * _SQRT2))
        r = sig * _SQRT2 * erfinv_array(flat_u[todo] * total)
        flat_out[todo] = np.clip(r, 0.0, 1.0)
    return flat_out.reshape(u.shape)


def perturbations_from_uniforms(
    uniforms: np.ndarray, sigmas: np.ndarray
) -> np.ndarray:
    """Deterministic ``r_e ~ R_{σ(e)}`` from per-pair uniforms.

    The pair-keyed perturbation mode's sampler: one inverse-CDF pass,
    so ``r_e`` is a pure function of its uniform and its σ — no shared
    RNG state, no redraw rounds.  Alias of :func:`truncated_normal_ppf`
    with the argument order Algorithm 2 reads naturally.
    """
    return truncated_normal_ppf(uniforms, sigmas)


def sample_perturbations_inverse(sigmas: np.ndarray, *, seed=None) -> np.ndarray:
    """Drop-in :func:`sample_perturbations` via the inverse CDF.

    Consumes exactly ``sigmas.size`` uniforms from the stream (one per
    element, including σ = 0 entries — a fixed draw count is the point:
    downstream stream positions never depend on acceptance luck).
    Distribution-equal to the rejection path, draw-for-draw different.
    """
    sigmas = np.asarray(sigmas, dtype=np.float64)
    rng = as_rng(seed)
    return truncated_normal_ppf(rng.random(sigmas.shape), sigmas)


# ---------------------------------------------------------------------------
# Counter-based pair substreams (pair code = counter, crc32-salted key)
# ---------------------------------------------------------------------------

#: Substream selectors of the pair-keyed perturbation mode.  Each is a
#: stable ``zlib.crc32`` constant (interpreter-independent, like the
#: Table-6 scheme streams), folded into the master key so the three
#: per-pair draws — the R_σ uniform, the white-noise coin and the
#: white-noise value — are mutually independent substreams.
PAIR_SUBSTREAM_PERTURBATION = zlib.crc32(b"repro.pair-stream.perturbation")
PAIR_SUBSTREAM_WHITE_MASK = zlib.crc32(b"repro.pair-stream.white-mask")
PAIR_SUBSTREAM_WHITE_VALUE = zlib.crc32(b"repro.pair-stream.white-value")

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_U64_MASK = (1 << 64) - 1


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer (Steele et al.) — a 64-bit avalanche bijection."""
    x = (x + _GOLDEN).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= _MIX_1
    x ^= x >> np.uint64(27)
    x *= _MIX_2
    x ^= x >> np.uint64(31)
    return x


def pair_stream_uniforms(
    key: int, codes: np.ndarray, substream: int
) -> np.ndarray:
    """One uniform in ``[0, 1)`` per pair code — a pure function.

    Counter-based generation: the pair code is the counter, ``key``
    (the master draw of one Algorithm-2 call) selects the stream and
    ``substream`` (a :data:`PAIR_SUBSTREAM_PERTURBATION`-style crc32
    constant) the per-purpose substream.  The counter is spread by the
    odd golden-ratio multiplier (a 64-bit bijection) and whitened by
    :func:`_splitmix64`; the top 53 bits become the uniform, exactly
    how ``numpy`` converts words to doubles.  No sequential state means
    draws are independent of evaluation order and of every other pair —
    the invariance the incremental posterior needs to see bit-equal
    probabilities for pairs shared across attempts.
    """
    codes = np.asarray(codes)
    if codes.size and int(codes.min()) < 0:
        raise ValueError("pair codes must be non-negative")
    mixed_key = np.uint64(
        (int(key) ^ (int(substream) * 0x9E3779B97F4A7C15)) & _U64_MASK
    )
    x = codes.astype(np.uint64) * _GOLDEN + mixed_key
    return (_splitmix64(x) >> np.uint64(11)).astype(np.float64) * 2.0**-53
