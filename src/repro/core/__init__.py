"""The paper's core contribution: (k, ε)-obfuscation by uncertainty injection.

Submodules map onto the paper's sections:

* :mod:`repro.core.degree_distribution` — §4 (Lemma 1 DP, CLT approximation)
* :mod:`repro.core.obfuscation_check` — §3/§4 (X/Y matrices, Definition 2)
* :mod:`repro.core.uniqueness` — §5.2 (Definition 3)
* :mod:`repro.core.perturbation` — §5.1 (Equation 6)
* :mod:`repro.core.generate` — §5.3 Algorithm 2
* :mod:`repro.core.search` — §5.3 Algorithm 1
"""

from repro.core.degree_distribution import (
    AUTO_EXACT_LIMIT,
    ERF_RATIONAL_MAX_ABS_ERROR,
    degree_pmf,
    erf_array,
    erf_rational,
    normal_approx_pmf,
    poisson_binomial_mean_var,
    poisson_binomial_pmf,
)
from repro.core.generate import (
    CandidateStallError,
    SearchContext,
    SigmaSetup,
    generate_obfuscation,
    select_excluded_vertices,
)
from repro.core.generic_posterior import (
    SampledPropertyPosterior,
    degree_property,
    neighbor_degree_property,
    sample_property_posterior,
)
from repro.core.obfuscation_check import (
    DegreePosterior,
    compute_degree_posterior,
    compute_degree_posterior_scalar,
    is_k_eps_obfuscation,
    tolerance_achieved,
)
from repro.core.posterior_batch import (
    FOLD_OUT_MAX_P,
    IncrementalDegreePosterior,
    degree_posterior_matrix,
    fold_in_bernoulli,
    fold_out_bernoulli,
    normal_approx_pmf_batch,
    poisson_binomial_pmf_batch,
)
from repro.core.perturbation import (
    erfinv_array,
    erfinv_newton,
    pair_stream_uniforms,
    perturbations_from_uniforms,
    sample_perturbation,
    sample_perturbations,
    sample_perturbations_inverse,
    truncated_normal_cdf,
    truncated_normal_mean,
    truncated_normal_pdf,
    truncated_normal_ppf,
)
from repro.core.search import obfuscate, obfuscate_with_fallback
from repro.core.types import (
    GenerationOutcome,
    ObfuscationParams,
    ObfuscationResult,
    SearchStep,
)
from repro.core.uniqueness import (
    degree_commonness,
    degree_uniqueness,
    gaussian_kernel,
    pair_uniqueness,
    property_commonness,
    redistribute_sigma,
    redistribute_sigma_invariant,
)

__all__ = [
    "AUTO_EXACT_LIMIT",
    "poisson_binomial_pmf",
    "poisson_binomial_pmf_batch",
    "normal_approx_pmf",
    "normal_approx_pmf_batch",
    "degree_pmf",
    "degree_posterior_matrix",
    "erf_array",
    "erf_rational",
    "ERF_RATIONAL_MAX_ABS_ERROR",
    "poisson_binomial_mean_var",
    "DegreePosterior",
    "SampledPropertyPosterior",
    "sample_property_posterior",
    "degree_property",
    "neighbor_degree_property",
    "compute_degree_posterior",
    "compute_degree_posterior_scalar",
    "tolerance_achieved",
    "is_k_eps_obfuscation",
    "gaussian_kernel",
    "degree_commonness",
    "degree_uniqueness",
    "property_commonness",
    "pair_uniqueness",
    "redistribute_sigma",
    "redistribute_sigma_invariant",
    "truncated_normal_pdf",
    "truncated_normal_cdf",
    "truncated_normal_mean",
    "truncated_normal_ppf",
    "erfinv_array",
    "erfinv_newton",
    "pair_stream_uniforms",
    "perturbations_from_uniforms",
    "sample_perturbation",
    "sample_perturbations",
    "sample_perturbations_inverse",
    "generate_obfuscation",
    "select_excluded_vertices",
    "CandidateStallError",
    "SearchContext",
    "SigmaSetup",
    "FOLD_OUT_MAX_P",
    "IncrementalDegreePosterior",
    "fold_in_bernoulli",
    "fold_out_bernoulli",
    "obfuscate",
    "obfuscate_with_fallback",
    "ObfuscationParams",
    "ObfuscationResult",
    "GenerationOutcome",
    "SearchStep",
]
