"""Quantifying obfuscation: the X/Y posterior matrices and Definition 2.

Given an uncertain graph, ``X_v(ω)`` is the probability that vertex ``v``
has degree ``ω`` across possible worlds (Equation 2; for the degree
property this is exactly the Poisson-binomial PMF of §4).  Normalising a
*column* gives ``Y_ω(v)`` — the adversary's posterior over published
vertices for a target known to have degree ``ω`` in the original graph
(Equation 3).

Definition 2: ``G̃`` k-obfuscates ``v`` iff ``H(Y_{P(v)}) ≥ log2 k``, and
is a (k, ε)-obfuscation iff at least ``(1-ε)·n`` vertices are
k-obfuscated.

The checker computes one posterior column per *distinct* original degree
(vertices sharing a degree share a column), which is what makes the
verification loop inside Algorithm 2 affordable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.degree_distribution import degree_pmf
from repro.core.posterior_batch import degree_posterior_matrix
from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph


class DegreePosterior:
    """Dense ``X_v(ω)`` matrix with entropy/obfuscation queries.

    Parameters
    ----------
    matrix:
        ``(n, width)`` array; row ``v`` holds ``Pr(d_v = ω)`` for
        ``ω < width``.  When ``width`` truncates a vertex's support the
        dropped tail mass is *discarded* (never lumped), so every stored
        entry is the exact point probability; truncated rows may sum to
        less than 1, which is harmless because posterior columns are
        normalised independently.

    Notes
    -----
    An all-zero column means no vertex can attain that degree in any
    world.  Definition 2 leaves this case implicit; we treat it as *not*
    obfuscated (entropy 0): an adversary holding an impossible property
    value learns the release is inconsistent with its target, which the
    obfuscation algorithm must not count as protection.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("posterior matrix must be 2-D (vertices × degrees)")
        self._matrix = matrix

    @property
    def matrix(self) -> np.ndarray:
        """The raw ``(n, width)`` X matrix."""
        return self._matrix

    @property
    def num_vertices(self) -> int:
        """Number of rows (vertices)."""
        return self._matrix.shape[0]

    @property
    def width(self) -> int:
        """Number of degree columns."""
        return self._matrix.shape[1]

    def x_row(self, v: int) -> np.ndarray:
        """``X_v(·)`` — degree distribution of vertex ``v``."""
        return self._matrix[v]

    def x_column(self, omega: int) -> np.ndarray:
        """Unnormalised column ``X_·(ω)``; zeros if ω is out of range."""
        if not 0 <= omega < self.width:
            return np.zeros(self.num_vertices, dtype=np.float64)
        return self._matrix[:, omega]

    def y_column(self, omega: int) -> np.ndarray:
        """``Y_ω(·)`` — the adversary posterior (Equation 3).

        Raises
        ------
        ValueError
            If the column has zero total mass (posterior undefined).
        """
        col = self.x_column(omega)
        total = col.sum()
        if total <= 0.0:
            raise ValueError(f"degree {omega} is unattainable; posterior undefined")
        return col / total

    def column_entropy(self, omega: int) -> float:
        """``H(Y_ω)`` in bits; 0.0 for unattainable degrees (see class notes).

        Routed through :meth:`column_entropies` so the scalar and
        vectorised paths agree bit-for-bit on every column.
        """
        return float(self.column_entropies(np.array([omega]))[0])

    def column_entropies(self, omegas: np.ndarray) -> np.ndarray:
        """``H(Y_ω)`` for a whole array of degrees in one vectorised pass.

        Out-of-range and unattainable (zero-mass) degrees yield 0.0,
        like :meth:`column_entropy`.  One ``(n, |ω|)`` normalise-and-
        ``x·log2 x`` evaluation replaces a Python loop of per-column
        :func:`repro.utils.entropy_bits` calls — the Definition-2
        checker runs once per Algorithm-2 attempt, so this is on the σ
        search's hot path.
        """
        omegas = np.asarray(omegas, dtype=np.int64)
        out = np.zeros(omegas.shape, dtype=np.float64)
        valid = (omegas >= 0) & (omegas < self.width)
        if not valid.any():
            return out
        cols = self._matrix[:, omegas[valid]]
        totals = cols.sum(axis=0)
        attainable = totals > 0.0
        if attainable.any():
            cols = cols[:, attainable]
            # H(c/T) = log2 T − (Σ c·log2 c)/T — one log2 pass over the
            # unnormalised columns instead of normalise-then-log, with
            # the 0·log 0 = 0 convention handled by a masked write.
            plogp = np.zeros_like(cols)
            np.log2(cols, out=plogp, where=cols > 0.0)
            plogp *= cols
            live_totals = totals[attainable]
            entropies = np.zeros(len(totals), dtype=np.float64)
            entropies[attainable] = (
                np.log2(live_totals) - plogp.sum(axis=0) / live_totals
            )
            out[valid] = entropies
        return out

    def entropy_by_degree(self, degrees: np.ndarray) -> dict[int, float]:
        """``H(Y_ω)`` for every distinct value in ``degrees``."""
        distinct = np.unique(np.asarray(degrees, dtype=np.int64))
        entropies = self.column_entropies(distinct)
        return {int(w): float(h) for w, h in zip(distinct, entropies)}

    def obfuscation_entropies(self, degrees: np.ndarray) -> np.ndarray:
        """Per-vertex entropy ``H(Y_{P(v)})`` for original degrees ``P(v)``."""
        degrees = np.asarray(degrees, dtype=np.int64)
        if degrees.shape[0] != self.num_vertices:
            raise ValueError("need one original degree per vertex")
        distinct, inverse = np.unique(degrees, return_inverse=True)
        return self.column_entropies(distinct)[inverse]

    def obfuscation_levels(self, degrees: np.ndarray) -> np.ndarray:
        """Per-vertex obfuscation level ``2^{H(Y_{P(v)})}`` ("effective k").

        On a certain graph this equals the number of vertices sharing the
        degree, recovering plain k-anonymity counts; Figure 4 of the paper
        plots cumulative counts of exactly this quantity.
        """
        return np.exp2(self.obfuscation_entropies(degrees))

    def k_obfuscated(self, degrees: np.ndarray, k: float) -> np.ndarray:
        """Boolean mask: which vertices are k-obfuscated (Definition 2)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self.obfuscation_entropies(degrees) >= math.log2(k) - 1e-12


def column_mass_stack(
    stack: np.ndarray, omegas: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-attempt column mass ``T = Σ_v c`` and ``S = Σ_v c·log2 c``.

    The shared reduction behind :func:`column_entropies_stack` and the
    batched probe path's split evaluation (which adds its CLT rows'
    mass before forming ``H = log2 T − S/T``).  ``stack`` is
    ``(t, n, width)``; both outputs are ``(t, len(omegas))``, with
    out-of-range degrees contributing zero mass.
    """
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 3:
        raise ValueError("stack must be 3-D (attempts × vertices × degrees)")
    omegas = np.asarray(omegas, dtype=np.int64)
    t, n, width = stack.shape
    totals = np.zeros((t, len(omegas)), dtype=np.float64)
    sums = np.zeros((t, len(omegas)), dtype=np.float64)
    valid = (omegas >= 0) & (omegas < width)
    if valid.any():
        # Gather on the flattened 2-D view (contiguous rows), reduce per
        # attempt block — same arithmetic as the per-attempt evaluation.
        cols = stack.reshape(t * n, width)[:, omegas[valid]]
        plogp = np.zeros_like(cols)
        np.log2(cols, out=plogp, where=cols > 0.0)
        plogp *= cols
        totals[:, valid] = cols.reshape(t, n, -1).sum(axis=1)
        sums[:, valid] = plogp.reshape(t, n, -1).sum(axis=1)
    return totals, sums


def entropies_from_column_mass(
    totals: np.ndarray, sums: np.ndarray
) -> np.ndarray:
    """``H = log2 T − S/T`` with the zero-mass → 0 convention."""
    out = np.zeros_like(totals)
    attainable = totals > 0.0
    np.log2(totals, out=out, where=attainable)
    out[attainable] -= sums[attainable] / totals[attainable]
    return out


def column_entropies_stack(stack: np.ndarray, omegas: np.ndarray) -> np.ndarray:
    """``H(Y_ω)`` per degree for a whole stack of posterior matrices.

    ``stack`` is ``(t, n, width)`` — one X matrix per Algorithm-2
    attempt — and the result is ``(t, len(omegas))``: row ``a`` equals
    ``DegreePosterior(stack[a]).column_entropies(omegas)`` up to the
    reduction axis (the same ``log2 T − (Σ c·log2 c)/T`` per column with
    the same 0·log 0 and zero-mass conventions).  One fused pass over
    all attempts replaces ``t`` separate column evaluations — the
    Definition-2 check of the batched ``pair_keyed`` probe path.
    """
    totals, sums = column_mass_stack(stack, omegas)
    return entropies_from_column_mass(totals, sums)


def compute_degree_posterior(
    uncertain: UncertainGraph,
    *,
    method: str = "auto",
    width: int | None = None,
    kernel: str = "auto",
) -> DegreePosterior:
    """Build the ``X_v(ω)`` matrix of an uncertain graph.

    Parameters
    ----------
    uncertain:
        The published uncertain graph.
    method:
        PMF computation method (see :func:`repro.core.degree_pmf`):
        ``"exact"``, ``"normal"``, or ``"auto"``.
    width:
        Number of degree columns (default: max support over vertices,
        plus one, i.e. no truncation).  Passing the max original degree
        plus one keeps the matrix small when only Definition-2 checks are
        needed; truncated tail mass is discarded, never lumped.
    kernel:
        Exact-row convolution kernel forwarded to
        :func:`repro.core.posterior_batch.degree_posterior_matrix`:
        ``"staircase"``, ``"tree"``, or ``"auto"`` (dispatch on
        :data:`repro.core.degree_distribution.TREE_CROSSOVER_WIDTH`).

    Returns
    -------
    DegreePosterior

    Notes
    -----
    Runs on the batched engine of :mod:`repro.core.posterior_batch` —
    one CSR export plus a handful of vectorised passes instead of ``n``
    scalar :func:`repro.core.degree_pmf` calls.  The scalar loop survives
    as :func:`compute_degree_posterior_scalar`, the ground truth the
    equivalence tests pin the engine against.
    """
    indptr, data = uncertain.incident_probability_csr()
    matrix = degree_posterior_matrix(
        indptr, data, method=method, width=width, kernel=kernel
    )
    return DegreePosterior(matrix)


def compute_degree_posterior_scalar(
    uncertain: UncertainGraph,
    *,
    method: str = "auto",
    width: int | None = None,
) -> DegreePosterior:
    """Reference implementation of :func:`compute_degree_posterior`.

    One scalar :func:`repro.core.degree_pmf` call per vertex.  Kept as
    the ground truth for the batched engine's equivalence tests (and as
    the baseline side of ``benchmarks/bench_posterior_batch.py``); not
    used on any hot path.
    """
    n = uncertain.num_vertices
    prob_vectors = [uncertain.incident_probabilities(v) for v in range(n)]
    if width is None:
        max_support = max((len(p) for p in prob_vectors), default=0)
        width = max_support + 1
    matrix = np.zeros((n, width), dtype=np.float64)
    for v, probs in enumerate(prob_vectors):
        matrix[v] = degree_pmf(probs, method=method, support=width - 1)
    return DegreePosterior(matrix)


def tolerance_achieved(
    uncertain: UncertainGraph | None,
    original_degrees: np.ndarray,
    k: float,
    *,
    method: str = "auto",
    kernel: str = "auto",
    posterior: DegreePosterior | None = None,
) -> float:
    """``ε' = |{v not k-obfuscated}| / n`` (Line 20 of Algorithm 2).

    Parameters
    ----------
    uncertain:
        Candidate release.  May be ``None`` when ``posterior`` is given
        — the array engine checks attempts straight off the incremental
        posterior without materialising an uncertain graph.
    original_degrees:
        ``P(v)`` — degrees in the original graph G (the adversary's
        background knowledge).
    k:
        Required obfuscation level.
    method:
        Degree-PMF method forwarded to :func:`compute_degree_posterior`.
    kernel:
        Exact-row kernel forwarded to :func:`compute_degree_posterior`.
    posterior:
        Pre-computed posterior to reuse, if available.
    """
    original_degrees = np.asarray(original_degrees, dtype=np.int64)
    if posterior is None:
        if uncertain is None:
            raise ValueError("need an uncertain graph or a precomputed posterior")
        width = max(int(original_degrees.max(initial=0)) + 1, 1)
        posterior = compute_degree_posterior(
            uncertain, method=method, width=width, kernel=kernel
        )
    mask = posterior.k_obfuscated(original_degrees, k)
    return float((~mask).sum()) / max(len(mask), 1)


def is_k_eps_obfuscation(
    uncertain: UncertainGraph,
    original: Graph | np.ndarray,
    k: float,
    eps: float,
    *,
    method: str = "auto",
) -> bool:
    """Definition 2 verdict: is ``uncertain`` a (k, ε)-obfuscation of G?"""
    degrees = original.degrees() if isinstance(original, Graph) else original
    return tolerance_achieved(uncertain, degrees, k, method=method) <= eps
