"""θ-commonness and θ-uniqueness of property values (Definition 3).

The commonness of a property value ω is a Gaussian-kernel-weighted count
of how many vertices carry nearby values:

    C_θ(ω) = Σ_v Φ_{0,θ}(d(ω, P(v))),      U_θ(ω) = 1 / C_θ(ω)

The paper notes these are meaningful *only as relative measures* — every
downstream use (selecting the excluded set H, the sampling distribution
Q, and the σ(e) redistribution of Eq. 7) consumes ratios of uniqueness
values.  We therefore drop the constant ``1/(θ·√(2π))`` prefactor of the
Gaussian density and use the kernel ``exp(-d²/(2θ²))``: all ratios are
unchanged, and the θ → 0 limit degrades gracefully to exact-match counts
(the kernel becomes an indicator) instead of overflowing.

For the degree property the computation is a histogram convolution,
``O(D²)`` for maximum degree D; a generic-property entry point accepts an
arbitrary distance callable.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np


def gaussian_kernel(distance: np.ndarray, theta: float) -> np.ndarray:
    """Unnormalised Gaussian kernel ``exp(-d² / (2θ²))``.

    ``θ = 0`` degenerates to the exact-match indicator ``1{d == 0}``.
    """
    distance = np.asarray(distance, dtype=np.float64)
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if theta == 0.0:
        return (distance == 0.0).astype(np.float64)
    # Normalise first (z = d/θ) so that subnormal θ cannot underflow θ²
    # into a 0/0 NaN; z may overflow to inf, which exp(-z²/2) maps to 0.
    with np.errstate(under="ignore", over="ignore"):
        z = distance / theta
        return np.exp(-0.5 * z * z)


def degree_histogram(degrees: np.ndarray) -> np.ndarray:
    """Float histogram of a degree sequence (``hist[ω] = #{v: d_v = ω}``).

    The σ-independent half of the commonness computation — Algorithm 1
    probes many θ = σ values against the *same* degree sequence, so the
    search context computes this once and re-runs only the O(D²) kernel
    pass per probe (:func:`degree_commonness_from_histogram`).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size == 0:
        return np.zeros(0, dtype=np.float64)
    if np.any(degrees < 0):
        raise ValueError("degrees must be non-negative")
    return np.bincount(degrees, minlength=int(degrees.max()) + 1).astype(
        np.float64
    )


def degree_commonness_from_histogram(
    hist: np.ndarray, theta: float
) -> np.ndarray:
    """``C_θ(ω)`` for ``ω ∈ {0, ..., D}`` from a precomputed histogram."""
    hist = np.asarray(hist, dtype=np.float64)
    if hist.size == 0:
        return np.zeros(0, dtype=np.float64)
    omegas = np.arange(len(hist), dtype=np.float64)
    # Pairwise |ω - ω'| kernel against the histogram: O(D²) with D = max degree.
    diff = omegas[:, None] - omegas[None, :]
    kernel = gaussian_kernel(diff, theta)
    return kernel @ hist


def degree_commonness(degrees: np.ndarray, theta: float) -> np.ndarray:
    """``C_θ(ω)`` for every degree value ``ω ∈ {0, ..., max degree}``.

    Parameters
    ----------
    degrees:
        Original degree sequence ``P(v)`` of the graph.
    theta:
        Kernel width; the obfuscation algorithm sets ``θ = σ`` (§5.2).

    Returns
    -------
    numpy.ndarray
        ``commonness[ω] = Σ_v exp(-(ω - d_v)²/(2θ²))``, length
        ``max(degrees) + 1``.
    """
    return degree_commonness_from_histogram(degree_histogram(degrees), theta)


def degree_uniqueness(degrees: np.ndarray, theta: float) -> np.ndarray:
    """Per-vertex uniqueness ``U_θ(P(v)) = 1 / C_θ(P(v))``.

    Every attained degree has commonness ≥ 1 (the vertex's own kernel
    contribution), so the result is finite and lies in ``(0, 1]``.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    commonness = degree_commonness(degrees, theta)
    return 1.0 / commonness[degrees]


def property_commonness(
    values: Sequence,
    theta: float,
    distance: Callable[[object, object], float],
) -> np.ndarray:
    """Generic-property commonness for arbitrary value domains.

    Evaluates ``C_θ(P(v))`` for every vertex by summing the Gaussian
    kernel of pairwise distances between *distinct* values, weighted by
    their multiplicities — ``O(D²)`` distance evaluations for D distinct
    values.  This is the extension point for properties like the
    radius-one subgraph (edit distance) mentioned in §5.2.

    Parameters
    ----------
    values:
        ``P(v)`` per vertex; values must be hashable.
    theta:
        Kernel width.
    distance:
        Symmetric distance ``d(ω, ω') ≥ 0`` on the property domain.

    Returns
    -------
    numpy.ndarray
        ``commonness[v] = C_θ(P(v))`` per vertex.
    """
    distinct: list = []
    counts: list[int] = []
    index: dict = {}
    for val in values:
        if val not in index:
            index[val] = len(distinct)
            distinct.append(val)
            counts.append(0)
        counts[index[val]] += 1
    d = len(distinct)
    dist_matrix = np.zeros((d, d), dtype=np.float64)
    for i in range(d):
        for j in range(i + 1, d):
            dist_matrix[i, j] = dist_matrix[j, i] = float(
                distance(distinct[i], distinct[j])
            )
    kernel = gaussian_kernel(dist_matrix, theta)
    per_value = kernel @ np.asarray(counts, dtype=np.float64)
    return np.array([per_value[index[val]] for val in values], dtype=np.float64)


def pair_uniqueness(
    vertex_uniqueness: np.ndarray, us: np.ndarray, vs: np.ndarray
) -> np.ndarray:
    """``U_σ(e) = (U_σ(P(u)) + U_σ(P(v))) / 2`` for pair arrays (§5.3)."""
    vertex_uniqueness = np.asarray(vertex_uniqueness, dtype=np.float64)
    return 0.5 * (vertex_uniqueness[us] + vertex_uniqueness[vs])


def redistribute_sigma(
    sigma: float, pair_uniq: np.ndarray
) -> np.ndarray:
    """Equation 7: spread the uncertainty budget σ over candidate pairs.

    ``σ(e) = σ·|E_C|·U_σ(e) / Σ_{e'} U_σ(e')`` — the mean of the returned
    vector equals ``σ`` exactly, with more-unique pairs receiving more.
    """
    pair_uniq = np.asarray(pair_uniq, dtype=np.float64)
    if pair_uniq.size == 0:
        return pair_uniq.copy()
    total = pair_uniq.sum()
    if total <= 0:
        raise ValueError("pair uniqueness values must have positive total mass")
    return sigma * pair_uniq.size * pair_uniq / total


def redistribute_sigma_invariant(
    sigma: float, pair_uniq: np.ndarray, mean_uniqueness: float
) -> np.ndarray:
    """Candidate-set-independent Eq. 7: ``σ(e) = σ·U_σ(e)/μ_Q``.

    :func:`redistribute_sigma` normalises by the *realised* mean
    uniqueness of the candidate set, so a pair's σ(e) shifts whenever
    any other pair enters or leaves ``E_C`` — which would re-randomise
    every probability each attempt and starve the incremental
    posterior.  The ``pair_keyed`` perturbation stream therefore
    replaces the empirical normaliser with its expectation under the
    pair-sampling distribution, ``μ_Q = Σ_v Q(v)·U_σ(P(v))`` (endpoints
    are Q-i.i.d., so ``E[U_σ(e)] = μ_Q``): σ(e) becomes a pure function
    of the pair and σ, and the mean of σ(e) over the Q-sampled
    candidates still concentrates on σ as ``|E_C|`` grows.  Under the
    ``"uniform"`` weighting ablation both normalisers are exactly 1 and
    the two variants coincide at ``σ(e) = σ``.
    """
    pair_uniq = np.asarray(pair_uniq, dtype=np.float64)
    if mean_uniqueness <= 0:
        raise ValueError(
            f"mean uniqueness must be positive, got {mean_uniqueness}"
        )
    return sigma * pair_uniq / mean_uniqueness
