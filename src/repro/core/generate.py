"""Algorithm 2 — ``GenerateObfuscation``: one randomized attempt batch.

Given a target σ, the routine:

1. computes σ-uniqueness of every vertex (Definition 3 with θ = σ);
2. excludes the ``⌈ε/2·n⌉`` most unique vertices (the set ``H``) from
   all uncertainty injection;
3. builds the sampling distribution ``Q ∝ U_σ(P(v))`` over ``V \\ H``;
4. for each of ``t`` attempts: grows/shrinks the candidate set ``E_C``
   from ``E`` by toggling Q-sampled pairs until ``|E_C| = c·|E|``,
   redistributes σ into per-pair ``σ(e)`` (Eq. 7), draws perturbations
   ``r_e ~ R_σ(e)`` (uniform for a q-fraction), and assigns
   ``p(e) = 1 - r_e`` for true edges / ``r_e`` for non-edges;
5. verifies Definition 2 and returns the attempt with the smallest
   realised tolerance ``ε̃ ≤ ε`` (or ``ε̃ = ∞`` if all attempts failed).

True edges that get *removed* from ``E_C`` become certain non-edges
(``p = 0``) — the coarse whole-edge deletions that partial perturbation
mostly, but not entirely, replaces.

Two execution engines share this module (``ObfuscationParams.engine``):

* ``"array"`` (default) — candidate sets are built by vectorised
  toggling over pair codes (:func:`_build_candidate_codes`), the
  Definition-2 check runs on the incremental posterior engine
  (:class:`repro.core.posterior_batch.IncrementalDegreePosterior`), and
  all σ-independent setup is hoisted into a :class:`SearchContext`
  shared across the probes of Algorithm 1's binary search.
* ``"sequential"`` — the original per-draw Python loop, kept as pinned
  ground truth.

Both engines consume the *same* RNG stream call-for-call, so a fixed
seed produces bit-identical candidate sets, released graphs and search
traces on either — the property the seed-equivalence tests pin.

Orthogonally, ``ObfuscationParams.stream`` selects where the
*perturbation* randomness comes from:

* ``"pair_keyed"`` (default) — one master key is drawn per Algorithm-2
  call and every pair's ``R_σ(e)`` uniform, white-noise coin and
  white-noise value come from counter-based substreams keyed by the
  pair code (:func:`repro.core.perturbation.pair_stream_uniforms`),
  sampled through the inverse CDF in a single pass.  σ(e) uses the
  candidate-set-independent Eq. 7 normaliser
  (:func:`repro.core.uniqueness.redistribute_sigma_invariant`), so a
  pair's probability is a pure function of ``(key, pair code, σ)``:
  pairs shared between attempts keep bit-equal probabilities and the
  incremental posterior serves their rows from cache or by
  fold-out/fold-in instead of re-running the Lemma-1 DP.
* ``"attempt"`` — the historical mode: every attempt redraws all pairs
  from the shared sequential stream (rejection sampling, empirical
  Eq. 7 normaliser).  Bit-identical to the pre-substream engine at a
  fixed seed; kept as pinned ground truth for the documented stream
  change.

Both streams are deterministic and engine-independent (array and
sequential agree pair-for-pair under either; the array fold path may
drift ≤1e-12 from the sequential full recompute, which the
stream-equivalence tests bound).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.degree_distribution import AUTO_EXACT_LIMIT
from repro.core.obfuscation_check import (
    DegreePosterior,
    column_mass_stack,
    compute_degree_posterior,
    entropies_from_column_mass,
)
from repro.core.perturbation import (
    PAIR_SUBSTREAM_PERTURBATION,
    PAIR_SUBSTREAM_WHITE_MASK,
    PAIR_SUBSTREAM_WHITE_VALUE,
    pair_stream_uniforms,
    perturbations_from_uniforms,
    sample_perturbations,
)
from repro.core.posterior_batch import (
    IncrementalDegreePosterior,
    _incidence_csr,
    _segment_moments,
    degree_posterior_matrix,
    fold_in_staircase,
    normal_approx_pmf_batch,
)
from repro.core.types import GenerationOutcome, ObfuscationParams
from repro.obs.metrics import REGISTRY as _OBS
from repro.core.uniqueness import (
    degree_commonness_from_histogram,
    degree_histogram,
    pair_uniqueness,
    redistribute_sigma,
    redistribute_sigma_invariant,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import multi_range
from repro.uncertain.graph import UncertainGraph
from repro.utils.rng import as_rng

#: Pairs are Q-sampled in batches of this size to amortise the cost of
#: weighted sampling over the vertex distribution.  At the paper's
#: ``c = 2`` a typical attempt needs ≈ ``|E|`` net additions, so one
#: batch usually suffices for graphs up to ~8k edges; the unused tail
#: of the final batch is discarded (both engines share this contract,
#: so the candidate stream is identical on either).
_BATCH = 8192

#: Bail-out multiplier: if candidate-set construction consumes more than
#: this many draws per needed pair, the graph is too dense/small for the
#: requested ``c`` and we raise instead of spinning.
_MAX_DRAW_FACTOR = 200

# (The packed (code, position) sort keys of _build_candidate_codes
# reserve position bits per call, since the pair_keyed stream may scale
# the batch; the np.unique fallback guards vertex counts large enough
# for the shifted codes to overflow int64.)

# Candidate-churn accounting (repro.obs).  The registry is the
# authoritative feed for aggregate run totals — search.py derives
# ObfuscationResult counters from registry deltas rather than
# re-threading them through GenerationOutcome — while the outcome
# fields stay populated for per-call consumers.
_GEN_PAIRS_DRAWN = _OBS.counter("generate.pairs_drawn")
_GEN_ATTEMPTS = _OBS.counter("generate.attempts_made")
_GEN_ROWS_FOLDED = _OBS.counter("generate.rows_folded")
_GEN_ROWS_RECOMPUTED = _OBS.counter("generate.rows_recomputed")
_GEN_STALLS = _OBS.counter("generate.candidate_stalls")
_GEN_CALLS = _OBS.counter("generate.calls")
_GEN_WINNERS = _OBS.counter("generate.winners")
_GEN_REDRAWS = _OBS.histogram("generate.redraws_per_attempt")


def _record_outcome(best: GenerationOutcome) -> GenerationOutcome:
    """Feed one Algorithm-2 call's outcome counters into the registry."""
    _GEN_CALLS.add(1)
    _GEN_PAIRS_DRAWN.add(best.pairs_drawn)
    _GEN_ATTEMPTS.add(best.attempts_made)
    _GEN_ROWS_FOLDED.add(best.rows_folded)
    _GEN_ROWS_RECOMPUTED.add(best.rows_recomputed)
    if best.uncertain is not None:
        _GEN_WINNERS.add(1)
    return best


class WeightedVertexSampler:
    """Bit-exact, table-accelerated replica of weighted ``rng.choice``.

    ``Generator.choice(n, size, p=probs, replace=True)`` draws ``size``
    uniforms and inverts the normalised CDF with
    ``searchsorted(side="right")`` — a binary search per draw, which
    dominates candidate-set construction.  This sampler precomputes the
    same CDF once per Q distribution plus a power-of-two lookup table
    over ``[0, 1)``: because ``u·T`` and ``t/T`` are exact binary
    scalings, ``lut[t] = #{i: cdf_i ≤ t/T}`` *equals* the searchsorted
    result at every cell boundary, so a draw resolves with one gather
    and (typically zero) monotone refinement jumps.  Outputs and RNG
    state are bit-identical to ``rng.choice`` — historical streams are
    preserved, which the sampler equivalence test pins.
    """

    _TABLE_BITS = 14

    def __init__(self, probs: np.ndarray):
        probs = np.asarray(probs, dtype=np.float64)
        cdf = np.cumsum(probs)
        cdf /= cdf[-1]  # exactly numpy's normalisation (choice does the same)
        self._cdf = cdf
        T = 1 << self._TABLE_BITS
        self._T = T
        cells = np.minimum(np.ceil(cdf * T).astype(np.int64), T)
        self._lut = np.cumsum(np.bincount(cells, minlength=T + 1))
        # Jump table over ties: runs of equal CDF values (zero-probability
        # vertices) are skipped whole, keeping refinement O(distinct values).
        last = np.empty(len(cdf), dtype=bool)
        last[:-1] = cdf[1:] > cdf[:-1]
        last[-1] = True
        end_idx = np.where(last, np.arange(len(cdf)), len(cdf))
        first_change = np.minimum.accumulate(end_idx[::-1])[::-1]
        self._next_distinct = first_change + 1

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` vertex indices; consumes ``rng.random(size)``."""
        u = rng.random(size)
        cdf = self._cdf
        idx = self._lut[(u * self._T).astype(np.int64)]
        while True:
            advance = np.flatnonzero(cdf[idx] <= u)
            if not advance.size:
                return idx
            idx[advance] = self._next_distinct[idx[advance]]


class CandidateStallError(RuntimeError):
    """Candidate-set construction could not reach ``|E_C| = c·|E|``.

    A stochastic stall: every eligible non-edge was absorbed before the
    target size was hit.  Algorithm 2 counts it as a failed attempt.
    ``pairs_drawn`` records the Q-sample draws consumed before giving
    up, so throughput accounting stays honest across failures.
    """

    def __init__(self, message: str, pairs_drawn: int):
        super().__init__(message)
        self.pairs_drawn = pairs_drawn


def select_excluded_vertices(
    uniqueness: np.ndarray, eps: float, n: int
) -> np.ndarray:
    """The set ``H``: the ``⌈ε/2·n⌉`` vertices with highest uniqueness.

    Ties are broken by vertex id for determinism.  These vertices are the
    "hopeless celebrities" of §3 — no uncertainty is spent on them, and
    they consume (half of) the ε tolerance budget.
    """
    size = int(np.ceil(eps / 2.0 * n))
    if size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((np.arange(len(uniqueness)), -uniqueness))
    return np.sort(order[:size])


def _stall_message(target_size: int, draws_used: int) -> str:
    return (
        f"candidate-set construction did not reach |E_C|={target_size} "
        f"after {draws_used} draws; the graph is likely too dense for c"
    )


def _sorted_contains(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Membership of ``needles`` in a sorted ``haystack``, per element.

    One binary-search pass — unlike ``np.isin``, which argsorts the
    concatenation of both arrays on every call even under
    ``assume_unique``.
    """
    if not len(haystack):
        return np.zeros(len(needles), dtype=bool)
    pos = np.searchsorted(haystack, needles)
    pos_clip = np.minimum(pos, len(haystack) - 1)
    return (pos < len(haystack)) & (haystack[pos_clip] == needles)


def _merge_sorted_disjoint(
    a: np.ndarray, b: np.ndarray, *, return_positions: bool = False
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Union of two sorted arrays with no common elements.

    The rank of each ``b`` element in the merged order is its
    searchsorted position in ``a`` plus its own index — no re-sort of
    the concatenation (``np.union1d`` would sort all ``|a|+|b|``
    elements again every batch).  With ``return_positions`` the merged
    indices of the ``b`` elements are returned too.
    """
    if not len(a) or not len(b):
        out = b if not len(a) else a
        if return_positions:
            positions = (
                np.arange(len(b)) if not len(a) else np.empty(0, dtype=np.int64)
            )
            return out, positions
        return out
    out = np.empty(len(a) + len(b), dtype=a.dtype)
    b_dest = np.searchsorted(a, b) + np.arange(len(b))
    mask = np.ones(len(out), dtype=bool)
    mask[b_dest] = False
    out[mask] = a
    out[b_dest] = b
    if return_positions:
        return out, b_dest
    return out


def _candidate_batch_size(target_size: int, m: int, stream: str) -> int:
    """Q-sampling batch size for one candidate build.

    The ``attempt`` stream is pinned to :data:`_BATCH` (its draw
    pattern is part of the PR-4 bit-identity contract).  The
    ``pair_keyed`` stream — a documented stream change — scales the
    batch to the net additions the build needs (plus 12.5% slack for
    self-pairs, repeats and removals, capped at 8×), so large graphs
    finish in one batch instead of paying the toggle bookkeeping per
    8192-pair slice.  Both engines derive the size from the same
    inputs, so their streams stay aligned.
    """
    if stream != "pair_keyed":
        return _BATCH
    needed = max(target_size - m, 1)
    slack = needed + needed // 8
    return min(-(-slack // _BATCH), 8) * _BATCH


def _build_candidate_set(
    n: int,
    edge_set: set[tuple[int, int]],
    target_size: int,
    q_probs: np.ndarray,
    rng: np.random.Generator,
    *,
    batch_size: int = _BATCH,
) -> tuple[set[tuple[int, int]], int]:
    """Lines 6–12 of Algorithm 2: grow E_C from E by Q-weighted toggles.

    The per-draw Python loop — pinned ground truth for
    :func:`_build_candidate_codes`, which replays the identical RNG
    stream with array ops (``rng.choice`` with a probability vector is
    bit-equivalent to :class:`WeightedVertexSampler`, which the sampler
    tests pin).  Returns the candidate set and the number of scalar
    draws consumed (two per candidate pair).
    """
    candidate: set[tuple[int, int]] = set(edge_set)
    max_draws = max(_MAX_DRAW_FACTOR * max(target_size, 1), 10_000)
    draws_used = 0
    while len(candidate) != target_size:
        if draws_used >= max_draws:
            raise CandidateStallError(
                _stall_message(target_size, draws_used), draws_used // 2
            )
        batch = rng.choice(n, size=2 * batch_size, p=q_probs, replace=True)
        draws_used += 2 * batch_size
        for i in range(0, len(batch), 2):
            u, v = int(batch[i]), int(batch[i + 1])
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            if key in edge_set:
                candidate.discard(key)
            else:
                candidate.add(key)
            if len(candidate) == target_size:
                break
    return candidate, draws_used


def _build_candidate_codes(
    n: int,
    edge_codes: np.ndarray,
    target_size: int,
    sampler: WeightedVertexSampler,
    rng: np.random.Generator,
    *,
    batch_size: int = _BATCH,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Vectorised Lines 6–12: same RNG stream, identical candidate set.

    Each ``rng.choice`` batch (the very call the sequential builder
    makes, so the stream stays aligned) is processed with array ops:
    pairs are encoded as scalar codes ``u·n + v``, self-pairs masked,
    repeated toggles collapsed to their first occurrence (an original
    edge is only ever *removed*, a non-edge only ever *added*, so every
    later occurrence of a code is a no-op), membership resolved against
    the sorted ``edge_codes`` via ``np.isin``, and the "stop when
    ``|E_C| = c·|E|``" cutoff located with a cumulative net-size scan.

    Returns
    -------
    (codes, is_edge, removed, draws_used):
        Sorted candidate pair codes, a parallel mask marking original
        edges, the sorted codes of edges toggled *out* of the candidate
        set, and the number of scalar draws consumed — bit-identical,
        draw-for-draw, to :func:`_build_candidate_set` at the same RNG
        state and batch size (pinned by the seed-equivalence tests).
    """
    m = len(edge_codes)
    max_draws = max(_MAX_DRAW_FACTOR * max(target_size, 1), 10_000)
    pos_bits = max((batch_size - 1).bit_length(), 1)
    pos_mask = (1 << pos_bits) - 1
    pack_safe = 1 << ((63 - pos_bits) // 2)
    draws_used = 0
    size = m
    toggled = np.empty(0, dtype=np.int64)  # sorted codes already toggled
    removed_parts: list[np.ndarray] = []
    added_parts: list[np.ndarray] = []
    while size != target_size:
        if draws_used >= max_draws:
            raise CandidateStallError(
                _stall_message(target_size, draws_used), draws_used // 2
            )
        batch = sampler.sample(rng, 2 * batch_size)
        draws_used += 2 * batch_size
        us, vs = batch[0::2], batch[1::2]
        valid = np.flatnonzero(us != vs)
        if not valid.size:
            continue  # every draw was a self-pair
        codes = np.minimum(us[valid], vs[valid]) * np.int64(n) + np.maximum(
            us[valid], vs[valid]
        )
        # First occurrence of each code in draw order, via one unstable
        # sort of packed (code, position) keys: ``valid`` holds indices
        # into the batch-long pair arrays, so positions are < batch_size
        # and fit in the low pos_bits bits.  Sorting the packed key
        # groups equal codes with their draw positions ascending — the
        # group head is the first occurrence.  ~2× faster than
        # np.unique's stable mergesort for the same result, which stays
        # as the fallback when n is large enough for the shifted codes
        # to overflow int64.
        if n <= pack_safe:
            packed = (codes << pos_bits) | valid
            packed.sort()
            head = np.empty(len(packed), dtype=bool)
            head[0] = True
            np.not_equal(
                packed[1:] >> pos_bits, packed[:-1] >> pos_bits, out=head[1:]
            )
            heads = packed[head]
            uniq, first_idx = heads >> pos_bits, heads & pos_mask
        else:
            uniq, first_idx = np.unique(codes, return_index=True)
            first_idx = valid[first_idx]
        if toggled.size:
            fresh = ~_sorted_contains(toggled, uniq)
            uniq, first_idx = uniq[fresh], first_idx[fresh]
        is_edge_sorted = _sorted_contains(edge_codes, uniq)
        order = np.argsort(first_idx)  # restore draw order
        eff_codes = uniq[order]
        is_edge = is_edge_sorted[order]
        running = size + np.cumsum(np.where(is_edge, -1, 1))
        hits = np.flatnonzero(running == target_size)
        if hits.size:
            stop = int(hits[0])
            eff_codes, is_edge = eff_codes[: stop + 1], is_edge[: stop + 1]
            size = target_size
        elif running.size:
            size = int(running[-1])
        removed_parts.append(eff_codes[is_edge])
        added_parts.append(eff_codes[~is_edge])
        if size != target_size:
            toggled = _merge_sorted_disjoint(toggled, np.sort(eff_codes))

    removed = np.concatenate(removed_parts) if removed_parts else np.empty(
        0, dtype=np.int64
    )
    if removed.size:
        removed.sort()
        kept = edge_codes[~_sorted_contains(removed, edge_codes)]
    else:
        kept = edge_codes
    if added_parts:
        added = np.concatenate(added_parts)
        added.sort()
    else:
        added = np.empty(0, dtype=np.int64)
    codes, added_dest = _merge_sorted_disjoint(kept, added, return_positions=True)
    is_edge = np.ones(len(codes), dtype=bool)
    is_edge[added_dest] = False
    return codes, is_edge, removed, draws_used


class SigmaSetup:
    """Per-σ derived state of Algorithm 2 (Lines 1–5), memo-friendly.

    Attributes
    ----------
    uniqueness:
        Per-vertex ``U_σ(P(v))`` after the weighting-mode override
        (all-ones under the ``"uniform"`` ablation).
    excluded:
        The set ``H`` (sorted vertex ids).
    q_probs:
        The sampling distribution ``Q`` over ``V \\ H``.
    available_additions:
        Number of non-edges with both endpoints outside ``H`` — the
        feasibility headroom for the ``|E_C| = c·|E|`` target.
    q_mean_uniqueness:
        ``μ_Q = Σ_v Q(v)·U_σ(P(v))`` — the expected uniqueness of a
        Q-sampled endpoint, the candidate-set-independent Eq. 7
        normaliser of the ``pair_keyed`` perturbation stream
        (:func:`repro.core.uniqueness.redistribute_sigma_invariant`).
    sampler:
        The table-accelerated Q sampler
        (:class:`WeightedVertexSampler`) the array builder draws
        batches from — built lazily so the sequential engine (which
        calls ``rng.choice`` directly) never pays for its tables.
    """

    __slots__ = (
        "uniqueness",
        "excluded",
        "q_probs",
        "available_additions",
        "q_mean_uniqueness",
        "_sampler",
    )

    def __init__(
        self,
        uniqueness,
        excluded,
        q_probs,
        available_additions,
        q_mean_uniqueness,
    ):
        self.uniqueness = uniqueness
        self.excluded = excluded
        self.q_probs = q_probs
        self.available_additions = available_additions
        self.q_mean_uniqueness = q_mean_uniqueness
        self._sampler: WeightedVertexSampler | None = None

    @property
    def sampler(self) -> WeightedVertexSampler:
        if self._sampler is None:
            self._sampler = WeightedVertexSampler(self.q_probs)
        return self._sampler


class SearchContext:
    """Hoisted state shared across the probes of the Algorithm-1 search.

    One Algorithm-1 run calls Algorithm 2 at a dozen or more σ values;
    everything that does not depend on σ — degrees, the degree
    histogram behind uniqueness, the edge set in both set and code
    form, the checker width, and the incremental posterior engine — is
    computed once here.  Per-σ setup (uniqueness, ``H``, Q-weights and
    the feasibility count) is memoised by σ, so repeated probes at the
    same σ (the doubling ladder replayed by ``obfuscate_with_fallback``
    when it escalates ``c``, or external sweeps) cost a dict lookup.

    A context is bound to one graph and one ``(eps, weighting, method)``
    combination; ``c``, ``k``, ``q`` and the σ-search knobs may vary
    freely across calls that share it.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        eps: float,
        weighting: str = "uniqueness",
        method: str = "auto",
    ):
        self.graph = graph
        self.eps = eps
        self.weighting = weighting
        self.method = method
        self.n = graph.num_vertices
        self.m = graph.num_edges
        self.degrees = graph.degrees()
        self.width = int(self.degrees.max(initial=0)) + 2
        self.edge_codes = graph.edge_codes()
        self._edge_us = self.edge_codes // max(self.n, 1)
        self._edge_vs = self.edge_codes % max(self.n, 1)
        self._degree_hist = degree_histogram(self.degrees)
        # Distinct original degrees + inverse map, shared by every
        # Definition-2 check (one np.unique instead of one per attempt).
        self.distinct_degrees, self.degree_inverse = np.unique(
            self.degrees, return_inverse=True
        )
        self._edge_set: set[tuple[int, int]] | None = None
        self._setups: dict[float, SigmaSetup] = {}
        self._posterior_engines: dict[bool, IncrementalDegreePosterior] = {}
        self._edge_incidence: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        # Per-vertex multiplicity of each distinct degree — turns the
        # per-attempt "count under-obfuscated vertices" gather into a
        # |distinct|-long weighted sum.
        self.degree_multiplicity = np.bincount(self.degree_inverse)

    @classmethod
    def for_params(cls, graph: Graph, params: ObfuscationParams) -> "SearchContext":
        """Build a context matching an ObfuscationParams bundle."""
        return cls(
            graph,
            eps=params.eps,
            weighting=params.weighting,
            method=params.method,
        )

    def check(self, graph: Graph, params: ObfuscationParams) -> None:
        """Raise if this context cannot serve ``(graph, params)``."""
        if self.graph is not graph:
            raise ValueError("search context was built for a different graph")
        if (self.eps, self.weighting, self.method) != (
            params.eps,
            params.weighting,
            params.method,
        ):
            raise ValueError(
                "search context (eps/weighting/method) does not match params"
            )

    @property
    def edge_set(self) -> set[tuple[int, int]]:
        """The original edge set (built lazily; only the sequential
        engine's per-draw membership probes need it)."""
        if self._edge_set is None:
            self._edge_set = self.graph.edge_set()
        return self._edge_set

    def edge_incidence(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical edge-incidence CSR *structure*, σ-independent.

        Returns ``(counts, indptr, entry_pair)`` where ``entry_pair``
        maps each CSR slot to the edge index whose probability occupies
        it — the layout of
        :func:`repro.core.posterior_batch._incidence_csr` with the data
        replaced by provenance.  The ``pair_keyed`` probe path fills the
        per-probe data with a single gather ``p_edge[entry_pair]``
        instead of re-running the scatter every probe.
        """
        if self._edge_incidence is None:
            m = len(self.edge_codes)
            counts, indptr, slots = _incidence_csr(
                self.n,
                self._edge_us,
                self._edge_vs,
                np.arange(m, dtype=np.float64),
            )
            self._edge_incidence = (counts, indptr, slots.astype(np.int64))
        return self._edge_incidence

    def posterior_engine(self, *, fold: bool = False) -> IncrementalDegreePosterior:
        """The shared incremental posterior engine (attempt-stream array path).

        One engine per fold mode, memoised for the context's lifetime
        so its cached state persists across attempts, probes and ``c``
        escalations.  The attempt stream uses ``fold=False``: changed
        rows are recomputed through the row-independent staircase/CLT
        passes, keeping the array engine bit-identical to the
        sequential one at every attempt.  (The ``pair_keyed`` stream
        does not route through this engine at all — its probe-batched
        base/fold path lives in :func:`_generate_pair_keyed_array`;
        ``fold=True`` remains available for callers that drive the
        incremental engine directly.)
        """
        engine = self._posterior_engines.get(fold)
        if engine is None:
            engine = IncrementalDegreePosterior(
                self.n, width=self.width, method=self.method, fold=fold
            )
            self._posterior_engines[fold] = engine
        return engine

    def sigma_setup(self, sigma: float) -> SigmaSetup:
        """Memoised per-σ setup (uniqueness, H, Q, feasibility)."""
        key = float(sigma)
        setup = self._setups.get(key)
        if setup is None:
            setup = self._make_setup(sigma, None)
            self._setups[key] = setup
        return setup

    def setup_for_excluded(self, sigma: float, excluded: np.ndarray) -> SigmaSetup:
        """Per-σ setup with an externally-chosen ``H`` (never memoised)."""
        return self._make_setup(sigma, np.asarray(excluded, dtype=np.int64))

    def _make_setup(self, sigma: float, excluded: np.ndarray | None) -> SigmaSetup:
        commonness = degree_commonness_from_histogram(self._degree_hist, sigma)
        uniqueness = 1.0 / commonness[self.degrees]
        if excluded is None:
            excluded = select_excluded_vertices(uniqueness, self.eps, self.n)
        if self.weighting == "uniform":
            # Ablation mode: ignore uniqueness for both pair sampling and
            # the σ(e) redistribution (flat budget).
            uniqueness = np.ones(self.n, dtype=np.float64)
        # Q(v) ∝ U_σ(P(v)) on V \ H (Line 3, restricted per Lines 8-9).
        q_weights = uniqueness.copy()
        q_weights[excluded] = 0.0
        total_weight = q_weights.sum()
        if total_weight <= 0:
            raise ValueError(
                "every vertex was excluded; cannot sample candidate pairs"
            )
        q_probs = q_weights / total_weight
        # μ_Q — the pair_keyed stream's Eq. 7 normaliser (see SigmaSetup).
        q_mean_uniqueness = float(q_probs @ uniqueness)
        # Feasibility: E_C can grow at most to |E| plus the non-edges
        # available among V \ H.  The paper's |E| ≪ |V2|/2 assumption
        # makes this always hold on real social graphs; tiny dense
        # graphs can violate it.  One mask pass over the edge codes
        # replaces the former per-edge Python set probes.
        eligible_mask = q_probs > 0
        n_eligible = int(eligible_mask.sum())
        edges_within = int(
            (eligible_mask[self._edge_us] & eligible_mask[self._edge_vs]).sum()
        )
        available = n_eligible * (n_eligible - 1) // 2 - edges_within
        return SigmaSetup(
            uniqueness, excluded, q_probs, available, q_mean_uniqueness
        )


def _pair_stream_perturbations(
    pair_key: int,
    codes: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    sigma: float,
    setup: SigmaSetup,
    q: float,
) -> np.ndarray:
    """``r_e`` for a batch of pairs — a pure function of the pair.

    The pair_keyed stream's sampler: per-pair σ(e) via the invariant
    Eq. 7 normaliser, one inverse-CDF pass over the pair-code-keyed
    uniforms, and white noise resolved from its own substreams.  The
    same helper serves both engines (and the batched probe path), so a
    pair's perturbation never depends on which call evaluates it.
    """
    pair_uniq = pair_uniqueness(setup.uniqueness, us, vs)
    pair_sigmas = redistribute_sigma_invariant(
        sigma, pair_uniq, setup.q_mean_uniqueness
    )
    r = perturbations_from_uniforms(
        pair_stream_uniforms(pair_key, codes, PAIR_SUBSTREAM_PERTURBATION),
        pair_sigmas,
    )
    white = pair_stream_uniforms(pair_key, codes, PAIR_SUBSTREAM_WHITE_MASK) < q
    if white.any():
        r[white] = pair_stream_uniforms(
            pair_key, codes[white], PAIR_SUBSTREAM_WHITE_VALUE
        )
    return r


def _column_entropies_split(
    Xf: np.ndarray,
    t_eff: int,
    n: int,
    extra_rows: np.ndarray,
    extra: np.ndarray,
    omegas: np.ndarray,
) -> np.ndarray:
    """``H(Y_ω)`` per attempt from the split posterior representation.

    The batched probe path stores exact-bucket rows in a width-capped
    ``(t·n, x_width)`` stack and CLT rows in their own full-width
    matrix; this combines both into per-attempt column entropies with
    the same ``log2 T − (Σ c·log2 c)/T`` arithmetic as
    :meth:`repro.core.obfuscation_check.DegreePosterior.column_entropies`
    (0·log 0 convention, zero-mass columns → 0), through the shared
    :func:`repro.core.obfuscation_check.column_mass_stack` reduction.
    Exact rows cannot reach degrees at or beyond the cap, so columns
    there draw from the CLT rows alone.
    """
    totals, sums = column_mass_stack(
        Xf.reshape(t_eff, n, Xf.shape[1]), omegas
    )
    if len(extra_rows):
        ecols = extra[:, omegas]
        eplogp = np.zeros_like(ecols)
        np.log2(ecols, out=eplogp, where=ecols > 0.0)
        eplogp *= ecols
        att = extra_rows // n
        np.add.at(totals, att, ecols)
        np.add.at(sums, att, eplogp)
    return entropies_from_column_mass(totals, sums)


def _generate_pair_keyed_array(
    sigma: float,
    params: ObfuscationParams,
    rng: np.random.Generator,
    context: SearchContext,
    setup: SigmaSetup,
    target_size: int,
) -> GenerationOutcome:
    """Algorithm 2 under the ``pair_keyed`` stream, array engine.

    The pair-keyed stream turns the probe's randomness inside out: the
    master RNG only feeds the candidate builds (plus the one key draw),
    and every pair probability is a pure function of
    ``(key, pair code, σ)``.  Two structural consequences carry the
    speedup:

    * **per-probe edge state** — original-edge probabilities are shared
      by all attempts, so their canonical incidence data, CLT moments
      and, for exact-bucket vertices, the Lemma-1 DP over the edge
      entries (the *base* rows) are computed once per probe;
    * **attempt batching** — with no stream interleaving between
      evaluation and sampling, all candidate sets are built first
      (stream-identical to the sequential engine) and then evaluated in
      one stacked pass: each attempt's *additions* are folded into the
      base rows by :func:`repro.core.posterior_batch.fold_in_staircase`
      over every attempt simultaneously, CLT rows take one batched
      moments pass, and the Definition-2 entropies evaluate on the
      ``(t, n, width)`` stack at once.

    Only two row classes pay a recompute: CLT rows (O(width) each, by
    design) and exact rows that lost an edge to candidate toggling —
    removed edges carry ``p = 1 - r_e`` beyond
    :data:`repro.core.posterior_batch.FOLD_OUT_MAX_P`, where the
    inverse fold is ill-conditioned, so their base is rebuilt from the
    kept entries instead (the same rule the incremental engine pins).
    Everything else is served from the cached base + fold-in — the
    ``rows_folded`` counter the benchmarks assert on.

    Fold rows fold edges first, then additions (the canonical CSR
    interleaves them), so values may drift ≤1e-12 from the sequential
    ground truth; candidate sets, probabilities and draws stay
    bit-identical.
    """
    n, m, width = context.n, context.m, context.width
    edge_codes = context.edge_codes
    pair_key = int(rng.integers(0, 2**63 - 1))

    # Phase 1 — candidate builds, consuming the master stream exactly
    # like the sequential engine's per-attempt builds (nothing else in
    # this mode draws from the master RNG between them).
    built: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
    pairs_drawn = 0
    batch_size = _candidate_batch_size(target_size, m, params.stream)
    for attempt in range(params.attempts):
        try:
            codes, is_edge, removed_codes, draws_used = _build_candidate_codes(
                n, edge_codes, target_size, setup.sampler, rng,
                batch_size=batch_size,
            )
        except CandidateStallError as stall:
            pairs_drawn += stall.pairs_drawn
            _GEN_STALLS.add(1)
            _GEN_REDRAWS.observe(stall.pairs_drawn)
            continue
        pairs_drawn += draws_used // 2
        _GEN_REDRAWS.observe(draws_used // 2)
        built.append((attempt, codes, is_edge, removed_codes))

    best = GenerationOutcome(
        eps_achieved=float("inf"), uncertain=None, sigma=sigma
    )
    best.pairs_drawn = pairs_drawn
    if not built:
        best.attempts_made = params.attempts
        return _record_outcome(best)
    t_eff = len(built)

    # Phase 2 — per-probe edge state: probabilities, canonical CSR
    # data, CLT moments, and the exact-bucket base DP rows.
    r_edge = _pair_stream_perturbations(
        pair_key,
        edge_codes,
        context._edge_us,
        context._edge_vs,
        sigma,
        setup,
        params.q,
    )
    p_edge = 1.0 - r_edge
    e_counts, e_indptr, entry_pair = context.edge_incidence()
    e_data = p_edge[entry_pair]
    # Exact-bucket rows can never exceed AUTO_EXACT_LIMIT incident
    # candidates, so the whole exact-side pipeline — base, rebuilds,
    # fold, stack — runs at that support cap instead of the full
    # retained width (hub degrees can be far larger; their CLT rows
    # live in a separate full-width matrix).
    if params.method == "normal":
        exact_limit = -1
        x_width = 1
        base = None
    elif params.method == "exact":
        exact_limit = np.iinfo(np.int64).max
        x_width = width
        # Full-exact mode has no CLT escape hatch, so hub rows can be
        # arbitrarily wide; kernel="auto" sends rows past
        # TREE_CROSSOVER_WIDTH to the O(s log² s) tree-product kernel.
        base = degree_posterior_matrix(
            e_indptr, e_data, method="exact", width=x_width, kernel="auto"
        )
    else:
        exact_limit = AUTO_EXACT_LIMIT
        x_width = min(width, AUTO_EXACT_LIMIT + 1)
        base = degree_posterior_matrix(
            e_indptr, e_data, method="auto", width=x_width, kernel="auto"
        )
    mu_edge, pq_edge = _segment_moments(e_data, e_indptr[:-1], e_indptr[1:])

    # Phase 3 — stack the attempts: addition probabilities in one hashed
    # pass, one incidence CSR over attempt-offset vertex ids, removed
    # edges located per attempt.
    add_parts = [codes[~is_edge] for _, codes, is_edge, _r in built]
    add_sizes = np.array([len(p) for p in add_parts], dtype=np.int64)
    add_codes = (
        np.concatenate(add_parts) if add_parts else np.empty(0, dtype=np.int64)
    )
    att_of_add = np.repeat(np.arange(t_eff, dtype=np.int64), add_sizes)
    add_us, add_vs = add_codes // n, add_codes % n
    r_add = _pair_stream_perturbations(
        pair_key, add_codes, add_us, add_vs, sigma, setup, params.q
    )
    offset = att_of_add * np.int64(n)
    a_counts, a_indptr, a_data = _incidence_csr(
        t_eff * n, offset + add_us, offset + add_vs, r_add
    )

    # Removed edges per attempt (the builder already knows them): their
    # stacked endpoint rows lose an incident entry and its moments.
    rem_sizes = np.array([len(r) for _, _, _, r in built], dtype=np.int64)
    rem_codes_all = (
        np.concatenate([r for _, _, _, r in built])
        if built
        else np.empty(0, dtype=np.int64)
    )
    rem_idx = np.searchsorted(edge_codes, rem_codes_all)
    rem_att = np.repeat(np.arange(t_eff, dtype=np.int64), rem_sizes)
    rem_off = rem_att * np.int64(n)
    removed_rows = np.concatenate(
        [rem_off + context._edge_us[rem_idx], rem_off + context._edge_vs[rem_idx]]
    )
    counts_stack = np.tile(e_counts, t_eff) + a_counts
    if removed_rows.size:
        p_rem = np.concatenate([p_edge[rem_idx], p_edge[rem_idx]])
        counts_stack -= np.bincount(removed_rows, minlength=t_eff * n)
        mu_rem = np.bincount(
            removed_rows, weights=p_rem, minlength=t_eff * n
        )
        pq_rem = np.bincount(
            removed_rows, weights=p_rem * (1.0 - p_rem), minlength=t_eff * n
        )
    else:
        mu_rem = pq_rem = np.zeros(t_eff * n, dtype=np.float64)

    exact_stack = counts_stack <= exact_limit
    has_removed = np.zeros(t_eff * n, dtype=bool)
    has_removed[removed_rows] = True

    # Phase 4 — posterior stack: every attempt's X initialised from the
    # base rows, removed-edge rows rebuilt, additions folded in, CLT
    # rows recomputed from moments into their own full-width matrix.
    X = np.empty((t_eff, n, x_width), dtype=np.float64)
    Xf = X.reshape(t_eff * n, x_width)
    if base is not None:
        X[:] = base[None, :, :]
    else:
        Xf[...] = 0.0

    rebuild = np.flatnonzero(exact_stack & has_removed)
    if rebuild.size:
        # Rebuild the base of rows that lost an edge to candidate
        # toggling: gather their edge-CSR slots and drop the slots whose
        # edge was toggled out in that row's attempt (p = 1 - r_e sits
        # beyond FOLD_OUT_MAX_P, so the inverse fold is off the table).
        verts = rebuild % n
        atts = rebuild // n
        live = e_counts[verts]
        slots = multi_range(e_indptr[verts], live)
        # Sparse (attempt, edge) membership on combined keys — the
        # removal set is tiny, so no dense (t, m) matrix is needed.
        rem_keys = np.sort(rem_att * np.int64(m) + rem_idx)
        slot_keys = np.repeat(atts, live) * np.int64(m) + entry_pair[slots]
        keep = ~_sorted_contains(rem_keys, slot_keys)
        row_of_slot = np.repeat(np.arange(len(rebuild)), live)
        sub_counts = np.bincount(
            row_of_slot[keep], minlength=len(rebuild)
        ).astype(np.int64)
        sub_indptr = np.zeros(len(rebuild) + 1, dtype=np.int64)
        np.cumsum(sub_counts, out=sub_indptr[1:])
        Xf[rebuild] = degree_posterior_matrix(
            sub_indptr,
            e_data[slots][keep],
            method="exact",
            width=x_width,
            kernel="auto",
        )

    # Fold every attempt's additions into its exact rows in one stacked
    # pass, in place over the whole posterior stack (rows to be
    # recomputed are masked out; rows without additions pass through).
    fold_in_staircase(
        Xf,
        a_indptr,
        a_data,
        support=counts_stack - a_counts + 1,
        active=exact_stack,
        overwrite=True,
        kernel="auto",
    )

    clt_rows = np.flatnonzero(~exact_stack)
    if clt_rows.size:
        verts = clt_rows % n
        add_mu, add_pq = _segment_moments(
            a_data, a_indptr[clt_rows], a_indptr[clt_rows + 1]
        )
        mu = mu_edge[verts] - mu_rem[clt_rows] + add_mu
        pq = pq_edge[verts] - pq_rem[clt_rows] + add_pq
        X_clt = normal_approx_pmf_batch(
            mu, pq, counts_stack[clt_rows], support=width - 1
        )
        # Their stack slots still hold the (meaningless) base tile —
        # blank them so the exact-side column sums skip CLT vertices.
        Xf[clt_rows] = 0.0
    else:
        X_clt = np.empty((0, width), dtype=np.float64)

    best.rows_folded = int(exact_stack.sum()) - len(rebuild)
    best.rows_recomputed = len(rebuild) + len(clt_rows)

    # Phase 5 — Definition 2 on the whole stack: entropies per distinct
    # original degree, under-obfuscated counts via degree multiplicity.
    k_threshold = math.log2(params.k) - 1e-12
    entropies = _column_entropies_split(
        Xf, t_eff, n, clt_rows, X_clt, context.distinct_degrees
    )
    under = entropies < k_threshold
    eps_attempts = (under * context.degree_multiplicity[None, :]).sum(
        axis=1
    ) / max(n, 1)

    qualifying = np.flatnonzero(eps_attempts <= params.eps)
    if not qualifying.size:
        best.attempts_made = params.attempts
        return _record_outcome(best)
    winner = int(qualifying[np.argmin(eps_attempts[qualifying])])
    attempt_index, codes, is_edge, _ = built[winner]
    probs = np.empty(len(codes), dtype=np.float64)
    probs[is_edge] = p_edge[
        np.searchsorted(edge_codes, codes[is_edge])
    ]
    hi = int(np.cumsum(add_sizes)[winner])
    probs[~is_edge] = r_add[hi - int(add_sizes[winner]) : hi]
    best.eps_achieved = float(eps_attempts[winner])
    best.uncertain = UncertainGraph._from_trusted_arrays(
        n, codes // n, codes % n, probs
    )
    best.attempts_made = attempt_index + 1
    return _record_outcome(best)


def generate_obfuscation(
    graph: Graph,
    sigma: float,
    params: ObfuscationParams,
    *,
    seed=None,
    excluded: np.ndarray | None = None,
    context: SearchContext | None = None,
) -> GenerationOutcome:
    """Run Algorithm 2 at spread σ and return the best attempt.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    sigma:
        Uncertainty budget (standard deviation of the base perturbation
        distribution; also the kernel width θ for uniqueness).
    params:
        Obfuscation parameters (k, ε, c, q, attempts, checker method,
        engine).
    seed:
        RNG seed/stream.
    excluded:
        Optional externally-chosen ``H`` (the paper allows H, or part of
        it, to be an input); defaults to the top-uniqueness selection.
    context:
        Optional :class:`SearchContext` to reuse across probes; the
        Algorithm-1 driver passes one so degrees, edge codes, per-σ
        uniqueness/Q-weights and the posterior engine are shared.  Must
        have been built for this graph and ``params``' eps/weighting/
        method.

    Returns
    -------
    GenerationOutcome
        ``eps_achieved = inf`` and ``uncertain = None`` if all ``t``
        attempts missed the tolerance.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = as_rng(seed)
    if context is None:
        context = SearchContext.for_params(graph, params)
    else:
        context.check(graph, params)
    n, m = context.n, context.m
    if n < 2 or m == 0:
        raise ValueError("graph must have at least two vertices and one edge")

    if excluded is None:
        setup = context.sigma_setup(sigma)
    else:
        setup = context.setup_for_excluded(sigma, excluded)
    uniqueness, q_probs = setup.uniqueness, setup.q_probs

    target_size = int(round(params.c * m))
    width = context.width  # checker needs columns only at original degrees
    if target_size > m + setup.available_additions:
        raise ValueError(
            f"candidate-set target c|E|={target_size} exceeds the {m} edges plus "
            f"{setup.available_additions} addable non-edges outside H; reduce c"
        )

    use_array = params.engine == "array"
    pair_stream = params.stream == "pair_keyed"
    if use_array and pair_stream:
        # The default path: per-probe edge state + batched attempt
        # evaluation through the base/fold posterior (see the helper's
        # docstring).  The sequential engine keeps the attempt loop
        # below as its ground truth for this stream too.
        return _generate_pair_keyed_array(
            sigma, params, rng, context, setup, target_size
        )

    best = GenerationOutcome(
        eps_achieved=float("inf"), uncertain=None, sigma=sigma
    )
    pairs_drawn = 0
    # The attempt stream's array path keeps fold off so its selective
    # updates stay bit-identical to the PR-4 engine.
    posterior_engine = context.posterior_engine() if use_array else None
    edge_set = context.edge_set if not use_array else None
    stats_before = dict(posterior_engine.stats) if use_array else None
    posteriors_computed = 0
    if pair_stream:
        # One master key per Algorithm-2 call: every pair draw below is
        # a pure function of (key, pair code, σ), shared by the call's
        # attempts — and by both engines, which consume the master
        # stream identically up to this point.
        pair_key = int(rng.integers(0, 2**63 - 1))
    k_threshold = math.log2(params.k) - 1e-12  # Definition-2 bound, as k_obfuscated
    batch_size = _candidate_batch_size(target_size, m, params.stream)
    for attempt in range(params.attempts):
        try:
            if use_array:
                codes, is_edge, _, draws_used = _build_candidate_codes(
                    n,
                    context.edge_codes,
                    target_size,
                    setup.sampler,
                    rng,
                    batch_size=batch_size,
                )
                us, vs = codes // n, codes % n
            else:
                candidate, draws_used = _build_candidate_set(
                    n, edge_set, target_size, q_probs, rng, batch_size=batch_size
                )
        except CandidateStallError as stall:
            # Stochastic stall (all eligible non-edges absorbed before the
            # target was hit) — count as a failed attempt, like the paper's
            # other per-attempt failure modes.
            pairs_drawn += stall.pairs_drawn
            _GEN_STALLS.add(1)
            _GEN_REDRAWS.observe(stall.pairs_drawn)
            continue
        pairs_drawn += draws_used // 2
        _GEN_REDRAWS.observe(draws_used // 2)
        if not use_array:
            pairs = np.array(sorted(candidate), dtype=np.int64)
            us, vs = pairs[:, 0], pairs[:, 1]
            codes = us * np.int64(n) + vs

        if pair_stream:
            perturbations = _pair_stream_perturbations(
                pair_key, codes, us, vs, sigma, setup, params.q
            )
        else:
            pair_uniq = pair_uniqueness(uniqueness, us, vs)
            pair_sigmas = redistribute_sigma(sigma, pair_uniq)
            perturbations = sample_perturbations(pair_sigmas, seed=rng)
            white = rng.random(len(us)) < params.q
            if white.any():
                perturbations[white] = rng.random(int(white.sum()))

        if not use_array:
            is_edge = np.isin(codes, context.edge_codes, assume_unique=True)
        probs = np.where(is_edge, 1.0 - perturbations, perturbations)

        if use_array:
            # The incremental engine diffs this attempt's candidate set
            # against the previous one and only touches changed rows; no
            # UncertainGraph is materialised unless the attempt wins.
            matrix = posterior_engine.update_from_pairs(us, vs, probs, codes=codes)
            posterior = DegreePosterior(matrix)
            uncertain = None
        else:
            uncertain = UncertainGraph.from_arrays(n, us, vs, probs, keep_zero=True)
            posterior = compute_degree_posterior(
                uncertain, method=params.method, width=width
            )
        posteriors_computed += 1
        # Line 20: ε̃ = |{v: H(Y_{P(v)}) < log2 k}| / n, sharing the
        # context's distinct-degree dedup (same arithmetic as
        # tolerance_achieved → k_obfuscated).
        entropies = posterior.column_entropies(context.distinct_degrees)
        obfuscated = entropies[context.degree_inverse] >= k_threshold
        eps_attempt = float((~obfuscated).sum()) / max(n, 1)
        if eps_attempt <= params.eps and eps_attempt < best.eps_achieved:
            if uncertain is None:
                # The array builder guarantees sorted unique u < v pairs
                # and owns the probs buffer — skip re-validation.
                uncertain = UncertainGraph._from_trusted_arrays(n, us, vs, probs)
            best = GenerationOutcome(
                eps_achieved=eps_attempt,
                uncertain=uncertain,
                sigma=sigma,
                attempts_made=attempt + 1,
            )
    if best.uncertain is None:
        best.attempts_made = params.attempts
    best.pairs_drawn = pairs_drawn
    if use_array:
        # Fold-path coverage: how many of this call's posterior rows the
        # incremental engine served from cache / by fold, vs recomputed
        # (full rebuilds recompute all n rows).
        stats_after = posterior_engine.stats
        best.rows_folded = (
            stats_after["skipped"]
            - stats_before["skipped"]
            + stats_after["folded"]
            - stats_before["folded"]
        )
        best.rows_recomputed = (
            stats_after["recomputed"]
            - stats_before["recomputed"]
            + n * (stats_after["full"] - stats_before["full"])
        )
    else:
        best.rows_recomputed = n * posteriors_computed
    return _record_outcome(best)
