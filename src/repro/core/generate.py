"""Algorithm 2 — ``GenerateObfuscation``: one randomized attempt batch.

Given a target σ, the routine:

1. computes σ-uniqueness of every vertex (Definition 3 with θ = σ);
2. excludes the ``⌈ε/2·n⌉`` most unique vertices (the set ``H``) from
   all uncertainty injection;
3. builds the sampling distribution ``Q ∝ U_σ(P(v))`` over ``V \\ H``;
4. for each of ``t`` attempts: grows/shrinks the candidate set ``E_C``
   from ``E`` by toggling Q-sampled pairs until ``|E_C| = c·|E|``,
   redistributes σ into per-pair ``σ(e)`` (Eq. 7), draws perturbations
   ``r_e ~ R_σ(e)`` (uniform for a q-fraction), and assigns
   ``p(e) = 1 - r_e`` for true edges / ``r_e`` for non-edges;
5. verifies Definition 2 and returns the attempt with the smallest
   realised tolerance ``ε̃ ≤ ε`` (or ``ε̃ = ∞`` if all attempts failed).

True edges that get *removed* from ``E_C`` become certain non-edges
(``p = 0``) — the coarse whole-edge deletions that partial perturbation
mostly, but not entirely, replaces.

Two execution engines share this module (``ObfuscationParams.engine``):

* ``"array"`` (default) — candidate sets are built by vectorised
  toggling over pair codes (:func:`_build_candidate_codes`), the
  Definition-2 check runs on the incremental posterior engine
  (:class:`repro.core.posterior_batch.IncrementalDegreePosterior`), and
  all σ-independent setup is hoisted into a :class:`SearchContext`
  shared across the probes of Algorithm 1's binary search.
* ``"sequential"`` — the original per-draw Python loop, kept as pinned
  ground truth.

Both engines consume the *same* RNG stream call-for-call, so a fixed
seed produces bit-identical candidate sets, released graphs and search
traces on either — the property the seed-equivalence tests pin.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.obfuscation_check import (
    DegreePosterior,
    compute_degree_posterior,
)
from repro.core.perturbation import sample_perturbations
from repro.core.posterior_batch import IncrementalDegreePosterior
from repro.core.types import GenerationOutcome, ObfuscationParams
from repro.core.uniqueness import (
    degree_commonness_from_histogram,
    degree_histogram,
    pair_uniqueness,
    redistribute_sigma,
)
from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph
from repro.utils.rng import as_rng

#: Pairs are Q-sampled in batches of this size to amortise the cost of
#: weighted sampling over the vertex distribution.  At the paper's
#: ``c = 2`` a typical attempt needs ≈ ``|E|`` net additions, so one
#: batch usually suffices for graphs up to ~8k edges; the unused tail
#: of the final batch is discarded (both engines share this contract,
#: so the candidate stream is identical on either).
_BATCH = 8192

#: Bail-out multiplier: if candidate-set construction consumes more than
#: this many draws per needed pair, the graph is too dense/small for the
#: requested ``c`` and we raise instead of spinning.
_MAX_DRAW_FACTOR = 200

#: Bits reserved for the within-batch draw position in the packed
#: (code, position) sort keys of :func:`_build_candidate_codes`.
_POS_BITS = (_BATCH - 1).bit_length()
_POS_MASK = (1 << _POS_BITS) - 1

#: Largest vertex count for which ``code << _POS_BITS`` stays inside
#: int64 (codes reach n² − 1, so n² · 2^_POS_BITS must be < 2⁶³);
#: beyond it the builder falls back to ``np.unique`` for the
#: first-occurrence collapse instead of silently overflowing.
_PACK_SAFE_VERTICES = 1 << ((63 - _POS_BITS) // 2)


class WeightedVertexSampler:
    """Bit-exact, table-accelerated replica of weighted ``rng.choice``.

    ``Generator.choice(n, size, p=probs, replace=True)`` draws ``size``
    uniforms and inverts the normalised CDF with
    ``searchsorted(side="right")`` — a binary search per draw, which
    dominates candidate-set construction.  This sampler precomputes the
    same CDF once per Q distribution plus a power-of-two lookup table
    over ``[0, 1)``: because ``u·T`` and ``t/T`` are exact binary
    scalings, ``lut[t] = #{i: cdf_i ≤ t/T}`` *equals* the searchsorted
    result at every cell boundary, so a draw resolves with one gather
    and (typically zero) monotone refinement jumps.  Outputs and RNG
    state are bit-identical to ``rng.choice`` — historical streams are
    preserved, which the sampler equivalence test pins.
    """

    _TABLE_BITS = 14

    def __init__(self, probs: np.ndarray):
        probs = np.asarray(probs, dtype=np.float64)
        cdf = np.cumsum(probs)
        cdf /= cdf[-1]  # exactly numpy's normalisation (choice does the same)
        self._cdf = cdf
        T = 1 << self._TABLE_BITS
        self._T = T
        cells = np.minimum(np.ceil(cdf * T).astype(np.int64), T)
        self._lut = np.cumsum(np.bincount(cells, minlength=T + 1))
        # Jump table over ties: runs of equal CDF values (zero-probability
        # vertices) are skipped whole, keeping refinement O(distinct values).
        last = np.empty(len(cdf), dtype=bool)
        last[:-1] = cdf[1:] > cdf[:-1]
        last[-1] = True
        end_idx = np.where(last, np.arange(len(cdf)), len(cdf))
        first_change = np.minimum.accumulate(end_idx[::-1])[::-1]
        self._next_distinct = first_change + 1

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` vertex indices; consumes ``rng.random(size)``."""
        u = rng.random(size)
        cdf = self._cdf
        idx = self._lut[(u * self._T).astype(np.int64)]
        while True:
            advance = np.flatnonzero(cdf[idx] <= u)
            if not advance.size:
                return idx
            idx[advance] = self._next_distinct[idx[advance]]


class CandidateStallError(RuntimeError):
    """Candidate-set construction could not reach ``|E_C| = c·|E|``.

    A stochastic stall: every eligible non-edge was absorbed before the
    target size was hit.  Algorithm 2 counts it as a failed attempt.
    ``pairs_drawn`` records the Q-sample draws consumed before giving
    up, so throughput accounting stays honest across failures.
    """

    def __init__(self, message: str, pairs_drawn: int):
        super().__init__(message)
        self.pairs_drawn = pairs_drawn


def select_excluded_vertices(
    uniqueness: np.ndarray, eps: float, n: int
) -> np.ndarray:
    """The set ``H``: the ``⌈ε/2·n⌉`` vertices with highest uniqueness.

    Ties are broken by vertex id for determinism.  These vertices are the
    "hopeless celebrities" of §3 — no uncertainty is spent on them, and
    they consume (half of) the ε tolerance budget.
    """
    size = int(np.ceil(eps / 2.0 * n))
    if size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((np.arange(len(uniqueness)), -uniqueness))
    return np.sort(order[:size])


def _stall_message(target_size: int, draws_used: int) -> str:
    return (
        f"candidate-set construction did not reach |E_C|={target_size} "
        f"after {draws_used} draws; the graph is likely too dense for c"
    )


def _sorted_contains(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Membership of ``needles`` in a sorted ``haystack``, per element.

    One binary-search pass — unlike ``np.isin``, which argsorts the
    concatenation of both arrays on every call even under
    ``assume_unique``.
    """
    if not len(haystack):
        return np.zeros(len(needles), dtype=bool)
    pos = np.searchsorted(haystack, needles)
    pos_clip = np.minimum(pos, len(haystack) - 1)
    return (pos < len(haystack)) & (haystack[pos_clip] == needles)


def _merge_sorted_disjoint(
    a: np.ndarray, b: np.ndarray, *, return_positions: bool = False
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Union of two sorted arrays with no common elements.

    The rank of each ``b`` element in the merged order is its
    searchsorted position in ``a`` plus its own index — no re-sort of
    the concatenation (``np.union1d`` would sort all ``|a|+|b|``
    elements again every batch).  With ``return_positions`` the merged
    indices of the ``b`` elements are returned too.
    """
    if not len(a) or not len(b):
        out = b if not len(a) else a
        if return_positions:
            positions = (
                np.arange(len(b)) if not len(a) else np.empty(0, dtype=np.int64)
            )
            return out, positions
        return out
    out = np.empty(len(a) + len(b), dtype=a.dtype)
    b_dest = np.searchsorted(a, b) + np.arange(len(b))
    mask = np.ones(len(out), dtype=bool)
    mask[b_dest] = False
    out[mask] = a
    out[b_dest] = b
    if return_positions:
        return out, b_dest
    return out


def _build_candidate_set(
    n: int,
    edge_set: set[tuple[int, int]],
    target_size: int,
    q_probs: np.ndarray,
    rng: np.random.Generator,
) -> tuple[set[tuple[int, int]], int]:
    """Lines 6–12 of Algorithm 2: grow E_C from E by Q-weighted toggles.

    The per-draw Python loop — pinned ground truth for
    :func:`_build_candidate_codes`, which replays the identical RNG
    stream with array ops (``rng.choice`` with a probability vector is
    bit-equivalent to :class:`WeightedVertexSampler`, which the sampler
    tests pin).  Returns the candidate set and the number of scalar
    draws consumed (two per candidate pair).
    """
    candidate: set[tuple[int, int]] = set(edge_set)
    max_draws = max(_MAX_DRAW_FACTOR * max(target_size, 1), 10_000)
    draws_used = 0
    while len(candidate) != target_size:
        if draws_used >= max_draws:
            raise CandidateStallError(
                _stall_message(target_size, draws_used), draws_used // 2
            )
        batch = rng.choice(n, size=2 * _BATCH, p=q_probs, replace=True)
        draws_used += 2 * _BATCH
        for i in range(0, len(batch), 2):
            u, v = int(batch[i]), int(batch[i + 1])
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            if key in edge_set:
                candidate.discard(key)
            else:
                candidate.add(key)
            if len(candidate) == target_size:
                break
    return candidate, draws_used


def _build_candidate_codes(
    n: int,
    edge_codes: np.ndarray,
    target_size: int,
    sampler: WeightedVertexSampler,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Vectorised Lines 6–12: same RNG stream, identical candidate set.

    Each ``rng.choice`` batch (the very call the sequential builder
    makes, so the stream stays aligned) is processed with array ops:
    pairs are encoded as scalar codes ``u·n + v``, self-pairs masked,
    repeated toggles collapsed to their first occurrence (an original
    edge is only ever *removed*, a non-edge only ever *added*, so every
    later occurrence of a code is a no-op), membership resolved against
    the sorted ``edge_codes`` via ``np.isin``, and the "stop when
    ``|E_C| = c·|E|``" cutoff located with a cumulative net-size scan.

    Returns
    -------
    (codes, is_edge, draws_used):
        Sorted candidate pair codes, a parallel mask marking original
        edges, and the number of scalar draws consumed — bit-identical,
        draw-for-draw, to :func:`_build_candidate_set` at the same RNG
        state (pinned by the seed-equivalence tests).
    """
    m = len(edge_codes)
    max_draws = max(_MAX_DRAW_FACTOR * max(target_size, 1), 10_000)
    draws_used = 0
    size = m
    toggled = np.empty(0, dtype=np.int64)  # sorted codes already toggled
    removed_parts: list[np.ndarray] = []
    added_parts: list[np.ndarray] = []
    while size != target_size:
        if draws_used >= max_draws:
            raise CandidateStallError(
                _stall_message(target_size, draws_used), draws_used // 2
            )
        batch = sampler.sample(rng, 2 * _BATCH)
        draws_used += 2 * _BATCH
        us, vs = batch[0::2], batch[1::2]
        valid = np.flatnonzero(us != vs)
        if not valid.size:
            continue  # every draw was a self-pair
        codes = np.minimum(us[valid], vs[valid]) * np.int64(n) + np.maximum(
            us[valid], vs[valid]
        )
        # First occurrence of each code in draw order, via one unstable
        # sort of packed (code, position) keys: ``valid`` holds indices
        # into the _BATCH-long pair arrays, so positions are < _BATCH
        # and fit in the low _POS_BITS bits.  Sorting the packed key
        # groups equal codes with their draw positions ascending — the
        # group head is the first occurrence.  ~2× faster than
        # np.unique's stable mergesort for the same result, which stays
        # as the fallback when n is large enough for the shifted codes
        # to overflow int64.
        if n <= _PACK_SAFE_VERTICES:
            packed = (codes << _POS_BITS) | valid
            packed.sort()
            head = np.empty(len(packed), dtype=bool)
            head[0] = True
            np.not_equal(
                packed[1:] >> _POS_BITS, packed[:-1] >> _POS_BITS, out=head[1:]
            )
            heads = packed[head]
            uniq, first_idx = heads >> _POS_BITS, heads & _POS_MASK
        else:
            uniq, first_idx = np.unique(codes, return_index=True)
            first_idx = valid[first_idx]
        if toggled.size:
            fresh = ~_sorted_contains(toggled, uniq)
            uniq, first_idx = uniq[fresh], first_idx[fresh]
        is_edge_sorted = _sorted_contains(edge_codes, uniq)
        order = np.argsort(first_idx)  # restore draw order
        eff_codes = uniq[order]
        is_edge = is_edge_sorted[order]
        running = size + np.cumsum(np.where(is_edge, -1, 1))
        hits = np.flatnonzero(running == target_size)
        if hits.size:
            stop = int(hits[0])
            eff_codes, is_edge = eff_codes[: stop + 1], is_edge[: stop + 1]
            size = target_size
        elif running.size:
            size = int(running[-1])
        removed_parts.append(eff_codes[is_edge])
        added_parts.append(eff_codes[~is_edge])
        if size != target_size:
            toggled = _merge_sorted_disjoint(toggled, np.sort(eff_codes))

    if removed_parts:
        removed = np.concatenate(removed_parts)
        removed.sort()
        kept = edge_codes[~_sorted_contains(removed, edge_codes)]
        added = np.concatenate(added_parts)
        added.sort()
    else:
        kept = edge_codes
        added = np.empty(0, dtype=np.int64)
    codes, added_dest = _merge_sorted_disjoint(kept, added, return_positions=True)
    is_edge = np.ones(len(codes), dtype=bool)
    is_edge[added_dest] = False
    return codes, is_edge, draws_used


class SigmaSetup:
    """Per-σ derived state of Algorithm 2 (Lines 1–5), memo-friendly.

    Attributes
    ----------
    uniqueness:
        Per-vertex ``U_σ(P(v))`` after the weighting-mode override
        (all-ones under the ``"uniform"`` ablation).
    excluded:
        The set ``H`` (sorted vertex ids).
    q_probs:
        The sampling distribution ``Q`` over ``V \\ H``.
    available_additions:
        Number of non-edges with both endpoints outside ``H`` — the
        feasibility headroom for the ``|E_C| = c·|E|`` target.
    sampler:
        The table-accelerated Q sampler
        (:class:`WeightedVertexSampler`) the array builder draws
        batches from — built lazily so the sequential engine (which
        calls ``rng.choice`` directly) never pays for its tables.
    """

    __slots__ = (
        "uniqueness",
        "excluded",
        "q_probs",
        "available_additions",
        "_sampler",
    )

    def __init__(self, uniqueness, excluded, q_probs, available_additions):
        self.uniqueness = uniqueness
        self.excluded = excluded
        self.q_probs = q_probs
        self.available_additions = available_additions
        self._sampler: WeightedVertexSampler | None = None

    @property
    def sampler(self) -> WeightedVertexSampler:
        if self._sampler is None:
            self._sampler = WeightedVertexSampler(self.q_probs)
        return self._sampler


class SearchContext:
    """Hoisted state shared across the probes of the Algorithm-1 search.

    One Algorithm-1 run calls Algorithm 2 at a dozen or more σ values;
    everything that does not depend on σ — degrees, the degree
    histogram behind uniqueness, the edge set in both set and code
    form, the checker width, and the incremental posterior engine — is
    computed once here.  Per-σ setup (uniqueness, ``H``, Q-weights and
    the feasibility count) is memoised by σ, so repeated probes at the
    same σ (the doubling ladder replayed by ``obfuscate_with_fallback``
    when it escalates ``c``, or external sweeps) cost a dict lookup.

    A context is bound to one graph and one ``(eps, weighting, method)``
    combination; ``c``, ``k``, ``q`` and the σ-search knobs may vary
    freely across calls that share it.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        eps: float,
        weighting: str = "uniqueness",
        method: str = "auto",
    ):
        self.graph = graph
        self.eps = eps
        self.weighting = weighting
        self.method = method
        self.n = graph.num_vertices
        self.m = graph.num_edges
        self.degrees = graph.degrees()
        self.width = int(self.degrees.max(initial=0)) + 2
        self.edge_codes = graph.edge_codes()
        self._edge_us = self.edge_codes // max(self.n, 1)
        self._edge_vs = self.edge_codes % max(self.n, 1)
        self._degree_hist = degree_histogram(self.degrees)
        # Distinct original degrees + inverse map, shared by every
        # Definition-2 check (one np.unique instead of one per attempt).
        self.distinct_degrees, self.degree_inverse = np.unique(
            self.degrees, return_inverse=True
        )
        self._edge_set: set[tuple[int, int]] | None = None
        self._setups: dict[float, SigmaSetup] = {}
        self._posterior_engine: IncrementalDegreePosterior | None = None

    @classmethod
    def for_params(cls, graph: Graph, params: ObfuscationParams) -> "SearchContext":
        """Build a context matching an ObfuscationParams bundle."""
        return cls(
            graph,
            eps=params.eps,
            weighting=params.weighting,
            method=params.method,
        )

    def check(self, graph: Graph, params: ObfuscationParams) -> None:
        """Raise if this context cannot serve ``(graph, params)``."""
        if self.graph is not graph:
            raise ValueError("search context was built for a different graph")
        if (self.eps, self.weighting, self.method) != (
            params.eps,
            params.weighting,
            params.method,
        ):
            raise ValueError(
                "search context (eps/weighting/method) does not match params"
            )

    @property
    def edge_set(self) -> set[tuple[int, int]]:
        """The original edge set (built lazily; only the sequential
        engine's per-draw membership probes need it)."""
        if self._edge_set is None:
            self._edge_set = self.graph.edge_set()
        return self._edge_set

    def posterior_engine(self) -> IncrementalDegreePosterior:
        """The shared incremental posterior engine (array engine only).

        ``fold=False``: changed rows are recomputed through the
        row-independent staircase/CLT passes, keeping the array engine
        bit-identical to the sequential one at every attempt.
        """
        if self._posterior_engine is None:
            self._posterior_engine = IncrementalDegreePosterior(
                self.n, width=self.width, method=self.method, fold=False
            )
        return self._posterior_engine

    def sigma_setup(self, sigma: float) -> SigmaSetup:
        """Memoised per-σ setup (uniqueness, H, Q, feasibility)."""
        key = float(sigma)
        setup = self._setups.get(key)
        if setup is None:
            setup = self._make_setup(sigma, None)
            self._setups[key] = setup
        return setup

    def setup_for_excluded(self, sigma: float, excluded: np.ndarray) -> SigmaSetup:
        """Per-σ setup with an externally-chosen ``H`` (never memoised)."""
        return self._make_setup(sigma, np.asarray(excluded, dtype=np.int64))

    def _make_setup(self, sigma: float, excluded: np.ndarray | None) -> SigmaSetup:
        commonness = degree_commonness_from_histogram(self._degree_hist, sigma)
        uniqueness = 1.0 / commonness[self.degrees]
        if excluded is None:
            excluded = select_excluded_vertices(uniqueness, self.eps, self.n)
        if self.weighting == "uniform":
            # Ablation mode: ignore uniqueness for both pair sampling and
            # the σ(e) redistribution (flat budget).
            uniqueness = np.ones(self.n, dtype=np.float64)
        # Q(v) ∝ U_σ(P(v)) on V \ H (Line 3, restricted per Lines 8-9).
        q_weights = uniqueness.copy()
        q_weights[excluded] = 0.0
        total_weight = q_weights.sum()
        if total_weight <= 0:
            raise ValueError(
                "every vertex was excluded; cannot sample candidate pairs"
            )
        q_probs = q_weights / total_weight
        # Feasibility: E_C can grow at most to |E| plus the non-edges
        # available among V \ H.  The paper's |E| ≪ |V2|/2 assumption
        # makes this always hold on real social graphs; tiny dense
        # graphs can violate it.  One mask pass over the edge codes
        # replaces the former per-edge Python set probes.
        eligible_mask = q_probs > 0
        n_eligible = int(eligible_mask.sum())
        edges_within = int(
            (eligible_mask[self._edge_us] & eligible_mask[self._edge_vs]).sum()
        )
        available = n_eligible * (n_eligible - 1) // 2 - edges_within
        return SigmaSetup(uniqueness, excluded, q_probs, available)


def generate_obfuscation(
    graph: Graph,
    sigma: float,
    params: ObfuscationParams,
    *,
    seed=None,
    excluded: np.ndarray | None = None,
    context: SearchContext | None = None,
) -> GenerationOutcome:
    """Run Algorithm 2 at spread σ and return the best attempt.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    sigma:
        Uncertainty budget (standard deviation of the base perturbation
        distribution; also the kernel width θ for uniqueness).
    params:
        Obfuscation parameters (k, ε, c, q, attempts, checker method,
        engine).
    seed:
        RNG seed/stream.
    excluded:
        Optional externally-chosen ``H`` (the paper allows H, or part of
        it, to be an input); defaults to the top-uniqueness selection.
    context:
        Optional :class:`SearchContext` to reuse across probes; the
        Algorithm-1 driver passes one so degrees, edge codes, per-σ
        uniqueness/Q-weights and the posterior engine are shared.  Must
        have been built for this graph and ``params``' eps/weighting/
        method.

    Returns
    -------
    GenerationOutcome
        ``eps_achieved = inf`` and ``uncertain = None`` if all ``t``
        attempts missed the tolerance.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = as_rng(seed)
    if context is None:
        context = SearchContext.for_params(graph, params)
    else:
        context.check(graph, params)
    n, m = context.n, context.m
    if n < 2 or m == 0:
        raise ValueError("graph must have at least two vertices and one edge")

    if excluded is None:
        setup = context.sigma_setup(sigma)
    else:
        setup = context.setup_for_excluded(sigma, excluded)
    uniqueness, q_probs = setup.uniqueness, setup.q_probs

    target_size = int(round(params.c * m))
    width = context.width  # checker needs columns only at original degrees
    if target_size > m + setup.available_additions:
        raise ValueError(
            f"candidate-set target c|E|={target_size} exceeds the {m} edges plus "
            f"{setup.available_additions} addable non-edges outside H; reduce c"
        )

    best = GenerationOutcome(
        eps_achieved=float("inf"), uncertain=None, sigma=sigma
    )
    pairs_drawn = 0
    use_array = params.engine == "array"
    posterior_engine = context.posterior_engine() if use_array else None
    edge_set = context.edge_set if not use_array else None
    k_threshold = math.log2(params.k) - 1e-12  # Definition-2 bound, as k_obfuscated
    for attempt in range(params.attempts):
        try:
            if use_array:
                codes, is_edge, draws_used = _build_candidate_codes(
                    n, context.edge_codes, target_size, setup.sampler, rng
                )
                us, vs = codes // n, codes % n
            else:
                candidate, draws_used = _build_candidate_set(
                    n, edge_set, target_size, q_probs, rng
                )
        except CandidateStallError as stall:
            # Stochastic stall (all eligible non-edges absorbed before the
            # target was hit) — count as a failed attempt, like the paper's
            # other per-attempt failure modes.
            pairs_drawn += stall.pairs_drawn
            continue
        pairs_drawn += draws_used // 2
        if not use_array:
            pairs = np.array(sorted(candidate), dtype=np.int64)
            us, vs = pairs[:, 0], pairs[:, 1]

        pair_uniq = pair_uniqueness(uniqueness, us, vs)
        pair_sigmas = redistribute_sigma(sigma, pair_uniq)

        perturbations = sample_perturbations(pair_sigmas, seed=rng)
        white = rng.random(len(us)) < params.q
        if white.any():
            perturbations[white] = rng.random(int(white.sum()))

        if not use_array:
            is_edge = np.isin(
                us * np.int64(n) + vs, context.edge_codes, assume_unique=True
            )
        probs = np.where(is_edge, 1.0 - perturbations, perturbations)

        if use_array:
            # The incremental engine diffs this attempt's candidate set
            # against the previous one and only touches changed rows; no
            # UncertainGraph is materialised unless the attempt wins.
            matrix = posterior_engine.update_from_pairs(us, vs, probs, codes=codes)
            posterior = DegreePosterior(matrix)
            uncertain = None
        else:
            uncertain = UncertainGraph.from_arrays(n, us, vs, probs, keep_zero=True)
            posterior = compute_degree_posterior(
                uncertain, method=params.method, width=width
            )
        # Line 20: ε̃ = |{v: H(Y_{P(v)}) < log2 k}| / n, sharing the
        # context's distinct-degree dedup (same arithmetic as
        # tolerance_achieved → k_obfuscated).
        entropies = posterior.column_entropies(context.distinct_degrees)
        obfuscated = entropies[context.degree_inverse] >= k_threshold
        eps_attempt = float((~obfuscated).sum()) / max(n, 1)
        if eps_attempt <= params.eps and eps_attempt < best.eps_achieved:
            if uncertain is None:
                # The array builder guarantees sorted unique u < v pairs
                # and owns the probs buffer — skip re-validation.
                uncertain = UncertainGraph._from_trusted_arrays(n, us, vs, probs)
            best = GenerationOutcome(
                eps_achieved=eps_attempt,
                uncertain=uncertain,
                sigma=sigma,
                attempts_made=attempt + 1,
            )
    if best.uncertain is None:
        best.attempts_made = params.attempts
    best.pairs_drawn = pairs_drawn
    return best
