"""Algorithm 2 — ``GenerateObfuscation``: one randomized attempt batch.

Given a target σ, the routine:

1. computes σ-uniqueness of every vertex (Definition 3 with θ = σ);
2. excludes the ``⌈ε/2·n⌉`` most unique vertices (the set ``H``) from
   all uncertainty injection;
3. builds the sampling distribution ``Q ∝ U_σ(P(v))`` over ``V \\ H``;
4. for each of ``t`` attempts: grows/shrinks the candidate set ``E_C``
   from ``E`` by toggling Q-sampled pairs until ``|E_C| = c·|E|``,
   redistributes σ into per-pair ``σ(e)`` (Eq. 7), draws perturbations
   ``r_e ~ R_σ(e)`` (uniform for a q-fraction), and assigns
   ``p(e) = 1 - r_e`` for true edges / ``r_e`` for non-edges;
5. verifies Definition 2 and returns the attempt with the smallest
   realised tolerance ``ε̃ ≤ ε`` (or ``ε̃ = ∞`` if all attempts failed).

True edges that get *removed* from ``E_C`` become certain non-edges
(``p = 0``) — the coarse whole-edge deletions that partial perturbation
mostly, but not entirely, replaces.
"""

from __future__ import annotations

import numpy as np

from repro.core.obfuscation_check import compute_degree_posterior, tolerance_achieved
from repro.core.perturbation import sample_perturbations
from repro.core.types import GenerationOutcome, ObfuscationParams
from repro.core.uniqueness import (
    degree_uniqueness,
    pair_uniqueness,
    redistribute_sigma,
)
from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph
from repro.utils.rng import as_rng

#: Pairs are Q-sampled in batches of this size to amortise the cost of
#: ``rng.choice`` over the vertex distribution.
_BATCH = 4096

#: Bail-out multiplier: if candidate-set construction consumes more than
#: this many draws per needed pair, the graph is too dense/small for the
#: requested ``c`` and we raise instead of spinning.
_MAX_DRAW_FACTOR = 200


def select_excluded_vertices(
    uniqueness: np.ndarray, eps: float, n: int
) -> np.ndarray:
    """The set ``H``: the ``⌈ε/2·n⌉`` vertices with highest uniqueness.

    Ties are broken by vertex id for determinism.  These vertices are the
    "hopeless celebrities" of §3 — no uncertainty is spent on them, and
    they consume (half of) the ε tolerance budget.
    """
    size = int(np.ceil(eps / 2.0 * n))
    if size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((np.arange(len(uniqueness)), -uniqueness))
    return np.sort(order[:size])


def _build_candidate_set(
    n: int,
    edge_set: set[tuple[int, int]],
    target_size: int,
    q_probs: np.ndarray,
    rng: np.random.Generator,
) -> set[tuple[int, int]]:
    """Lines 6–12 of Algorithm 2: grow E_C from E by Q-weighted toggles.

    ``edge_set`` is the original graph's edge set (ordered ``u < v``
    tuples), precomputed once per :func:`generate_obfuscation` call so
    the per-draw edge test is one set membership probe instead of a
    bounds-checked :meth:`Graph.has_edge` call.
    """
    candidate: set[tuple[int, int]] = set(edge_set)
    max_draws = max(_MAX_DRAW_FACTOR * max(target_size, 1), 10_000)
    draws_used = 0
    while len(candidate) != target_size:
        if draws_used >= max_draws:
            raise RuntimeError(
                f"candidate-set construction did not reach |E_C|={target_size} "
                f"after {draws_used} draws; the graph is likely too dense for c"
            )
        batch = rng.choice(n, size=2 * _BATCH, p=q_probs, replace=True)
        draws_used += 2 * _BATCH
        for i in range(0, len(batch), 2):
            u, v = int(batch[i]), int(batch[i + 1])
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            if key in edge_set:
                candidate.discard(key)
            else:
                candidate.add(key)
            if len(candidate) == target_size:
                break
    return candidate


def generate_obfuscation(
    graph: Graph,
    sigma: float,
    params: ObfuscationParams,
    *,
    seed=None,
    excluded: np.ndarray | None = None,
) -> GenerationOutcome:
    """Run Algorithm 2 at spread σ and return the best attempt.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    sigma:
        Uncertainty budget (standard deviation of the base perturbation
        distribution; also the kernel width θ for uniqueness).
    params:
        Obfuscation parameters (k, ε, c, q, attempts, checker method).
    seed:
        RNG seed/stream.
    excluded:
        Optional externally-chosen ``H`` (the paper allows H, or part of
        it, to be an input); defaults to the top-uniqueness selection.

    Returns
    -------
    GenerationOutcome
        ``eps_achieved = inf`` and ``uncertain = None`` if all ``t``
        attempts missed the tolerance.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = as_rng(seed)
    n = graph.num_vertices
    m = graph.num_edges
    if n < 2 or m == 0:
        raise ValueError("graph must have at least two vertices and one edge")

    degrees = graph.degrees()
    uniqueness = degree_uniqueness(degrees, sigma)

    if excluded is None:
        excluded = select_excluded_vertices(uniqueness, params.eps, n)
    else:
        excluded = np.asarray(excluded, dtype=np.int64)

    if params.weighting == "uniform":
        # Ablation mode: ignore uniqueness for both pair sampling and the
        # σ(e) redistribution (flat budget).
        uniqueness = np.ones(n, dtype=np.float64)

    # Q(v) ∝ U_σ(P(v)) on V \ H (Line 3, restricted per Lines 8-9).
    q_weights = uniqueness.copy()
    q_weights[excluded] = 0.0
    total_weight = q_weights.sum()
    if total_weight <= 0:
        raise ValueError("every vertex was excluded; cannot sample candidate pairs")
    q_probs = q_weights / total_weight

    target_size = int(round(params.c * m))
    width = int(degrees.max()) + 2  # checker needs columns only at original degrees
    edge_set = graph.edge_set()
    edge_codes = graph.edge_codes()

    # Feasibility: E_C can grow at most to |E| plus the non-edges available
    # among V \ H.  The paper's |E| ≪ |V2|/2 assumption makes this always
    # hold on real social graphs; tiny dense graphs can violate it.
    eligible = np.flatnonzero(q_probs > 0)
    eligible_set = set(int(v) for v in eligible)
    edges_within = sum(
        1 for u, v in edge_set if u in eligible_set and v in eligible_set
    )
    available_additions = len(eligible) * (len(eligible) - 1) // 2 - edges_within
    if target_size > m + available_additions:
        raise ValueError(
            f"candidate-set target c|E|={target_size} exceeds the {m} edges plus "
            f"{available_additions} addable non-edges outside H; reduce c"
        )

    best = GenerationOutcome(
        eps_achieved=float("inf"), uncertain=None, sigma=sigma
    )
    for attempt in range(params.attempts):
        try:
            candidate = _build_candidate_set(n, edge_set, target_size, q_probs, rng)
        except RuntimeError:
            # Stochastic stall (all eligible non-edges absorbed before the
            # target was hit) — count as a failed attempt, like the paper's
            # other per-attempt failure modes.
            continue

        pairs = np.array(sorted(candidate), dtype=np.int64)
        us, vs = pairs[:, 0], pairs[:, 1]
        pair_uniq = pair_uniqueness(uniqueness, us, vs)
        pair_sigmas = redistribute_sigma(sigma, pair_uniq)

        perturbations = sample_perturbations(pair_sigmas, seed=rng)
        white = rng.random(len(pairs)) < params.q
        if white.any():
            perturbations[white] = rng.random(int(white.sum()))

        is_edge = np.isin(us * np.int64(n) + vs, edge_codes, assume_unique=True)
        probs = np.where(is_edge, 1.0 - perturbations, perturbations)

        uncertain = UncertainGraph.from_arrays(n, us, vs, probs, keep_zero=True)

        posterior = compute_degree_posterior(
            uncertain, method=params.method, width=width
        )
        eps_attempt = tolerance_achieved(
            uncertain, degrees, params.k, posterior=posterior
        )
        if eps_attempt <= params.eps and eps_attempt < best.eps_achieved:
            best = GenerationOutcome(
                eps_achieved=eps_attempt,
                uncertain=uncertain,
                sigma=sigma,
                attempts_made=attempt + 1,
            )
    best.attempts_made = params.attempts
    return best
