"""Parameter and result dataclasses for the obfuscation algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uncertain.graph import UncertainGraph


@dataclass(frozen=True)
class ObfuscationParams:
    """Inputs of Algorithms 1–2, with the paper's §7.1 defaults.

    Attributes
    ----------
    k:
        Required obfuscation level (entropy lower bound ``log2 k``).
    eps:
        Tolerance — fraction of vertices allowed to stay under-obfuscated.
    c:
        Candidate-set size multiplier: ``|E_C| = c·|E|``.  Paper default 2,
        with 3 as the fallback when the σ search fails to bracket.
    q:
        White-noise level: fraction of pairs whose perturbation is drawn
        uniformly instead of from ``R_σ(e)`` (defeats thresholding at 0.5).
    attempts:
        ``t`` — randomized tries per σ inside Algorithm 2 (paper used 5).
    method:
        Degree-PMF method for the Definition-2 checker
        (``"exact"``/``"normal"``/``"auto"``).
    sigma_init:
        Initial upper bound for the doubling phase of Algorithm 1.
    sigma_max:
        Doubling cap; exceeding it declares failure (paper's remedy is
        increasing ``c``).
    delta:
        Binary-search termination width.  The paper's Table 2 floor of
        ``5.96·10⁻⁸ = 2⁻²⁴`` corresponds to ``delta ≈ 1e-7`` with
        ``sigma_init = 1``; the default here is coarser so that full
        experiment sweeps stay laptop-friendly.
    weighting:
        ``"uniqueness"`` — the paper's design: candidate pairs are
        Q-sampled by vertex uniqueness and σ is redistributed per Eq. 7;
        ``"uniform"`` — ablation: uniform pair sampling and a flat
        ``σ(e) = σ``, isolating how much the uniqueness targeting buys.
    engine:
        Algorithm-2 execution engine.  ``"array"`` (default) builds the
        candidate set with vectorised toggling and reuses the
        incremental posterior engine across attempts; ``"sequential"``
        is the per-draw Python loop kept as pinned ground truth.  Both
        consume the identical RNG stream, so a fixed seed produces the
        same candidate sets, obfuscations and search traces on either.
    stream:
        Source of the per-pair perturbation randomness.
        ``"pair_keyed"`` (default) derives every ``r_e ~ R_σ(e)`` — and
        the white-noise coin and value — from a counter-based substream
        keyed by the pair code, via one inverse-CDF pass: a pair's draw
        is a pure function of ``(master key, pair code, σ)``, so pairs
        shared between attempts keep bit-equal probabilities and the
        incremental posterior's fold path carries the Definition-2
        check.  ``"attempt"`` is the historical mode — every attempt
        redraws all pairs from the shared sequential stream — retained
        as pinned ground truth, bit-identical to the pre-substream
        engine at a fixed seed.  The two modes consume different
        streams (a documented stream change) but are both
        deterministic, and both are engine-independent: ``"array"`` and
        ``"sequential"`` agree under either stream.
    """

    k: float
    eps: float
    c: float = 2.0
    q: float = 0.01
    attempts: int = 5
    method: str = "auto"
    sigma_init: float = 1.0
    sigma_max: float = 128.0
    delta: float = 1e-3
    weighting: str = "uniqueness"
    engine: str = "array"
    stream: str = "pair_keyed"

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 0.0 <= self.eps < 1.0:
            raise ValueError(f"eps must be in [0, 1), got {self.eps}")
        if self.c < 1.0:
            raise ValueError(f"c must be >= 1, got {self.c}")
        if not 0.0 <= self.q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {self.q}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.sigma_init <= 0 or self.sigma_max < self.sigma_init:
            raise ValueError("need 0 < sigma_init <= sigma_max")
        if self.delta <= 0:
            raise ValueError(f"delta must be > 0, got {self.delta}")
        if self.weighting not in ("uniqueness", "uniform"):
            raise ValueError(
                f"weighting must be 'uniqueness' or 'uniform', got {self.weighting!r}"
            )
        if self.engine not in ("array", "sequential"):
            raise ValueError(
                f"engine must be 'array' or 'sequential', got {self.engine!r}"
            )
        if self.stream not in ("pair_keyed", "attempt"):
            raise ValueError(
                f"stream must be 'pair_keyed' or 'attempt', got {self.stream!r}"
            )


@dataclass
class GenerationOutcome:
    """Result of one :func:`generate_obfuscation` call (Algorithm 2).

    ``eps_achieved`` is ``inf`` when none of the ``t`` attempts met the
    tolerance, mirroring the paper's ``ε̃ = ∞`` sentinel.

    ``attempts_made`` is the 1-based index of the attempt that produced
    the returned obfuscation (the *winning* attempt), or the total
    number of attempts executed when every attempt failed.

    ``pairs_drawn`` counts the candidate-pair draws actually consumed by
    Line 7's Q-sampling across all attempts — including self-pairs,
    repeats and the unused tail of the final sampling batch — the
    honest denominator for Table-3 throughput accounting.

    ``rows_folded`` / ``rows_recomputed`` report posterior fold-path
    coverage: of the ``n × attempts`` degree-PMF rows the Definition-2
    checks needed, how many were served incrementally (cached row kept,
    or updated by fold-out/fold-in of its changed entries) versus
    recomputed through the full staircase/CLT passes (full rebuilds
    count all ``n`` rows).  The sequential engine recomputes everything
    by construction, so its ``rows_folded`` is always 0 — the counters
    are how benchmarks assert the ``pair_keyed`` stream actually keeps
    the incremental path hot.
    """

    eps_achieved: float
    uncertain: UncertainGraph | None
    sigma: float
    attempts_made: int = 0
    pairs_drawn: int = 0
    rows_folded: int = 0
    rows_recomputed: int = 0

    @property
    def success(self) -> bool:
        """Whether a (k, ε)-obfuscation was found at this σ."""
        return self.uncertain is not None


@dataclass
class SearchStep:
    """One probe of the Algorithm-1 σ search (for traces/reporting)."""

    sigma: float
    eps_achieved: float
    phase: str  # "doubling" or "bisection"

    @property
    def success(self) -> bool:
        """Whether this probe produced a valid obfuscation."""
        return self.eps_achieved != float("inf")


@dataclass
class ObfuscationResult:
    """Final output of :func:`repro.core.obfuscate` (Algorithm 1).

    Attributes
    ----------
    uncertain:
        The (k, ε)-obfuscated graph, or ``None`` on failure.
    sigma:
        The smallest σ at which generation succeeded.
    eps_achieved:
        The realised tolerance ``ε̃ ≤ ε`` of the returned graph.
    params:
        Echo of the input parameters.
    trace:
        Every (σ, ε̃) probe in order — doubling phase then bisection.
    edges_processed:
        Total candidate-pair draws actually consumed across all probes
        (the sum of per-probe ``pairs_drawn`` — throughput accounting
        for the Table 3 reproduction).
    rows_folded, rows_recomputed:
        Posterior fold-path coverage summed over all probes (see
        :class:`GenerationOutcome`);
        ``rows_folded / (rows_folded + rows_recomputed)`` is the
        fraction of degree-PMF rows the incremental engine served
        without a full recompute.
    elapsed_seconds:
        Wall-clock time of the whole search.
    """

    uncertain: UncertainGraph | None
    sigma: float
    eps_achieved: float
    params: ObfuscationParams
    trace: list[SearchStep] = field(default_factory=list)
    edges_processed: int = 0
    rows_folded: int = 0
    rows_recomputed: int = 0
    elapsed_seconds: float = 0.0

    @property
    def success(self) -> bool:
        """Whether the search produced a valid (k, ε)-obfuscation."""
        return self.uncertain is not None

    @property
    def edges_per_second(self) -> float:
        """Throughput in processed candidate pairs per second (Table 3)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.edges_processed / self.elapsed_seconds

    @property
    def fold_fraction(self) -> float:
        """Fraction of posterior rows served by the incremental path."""
        total = self.rows_folded + self.rows_recomputed
        if total == 0:
            return 0.0
        return self.rows_folded / total
