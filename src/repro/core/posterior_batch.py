"""Batched Poisson-binomial posterior engine (§4, vectorised).

The Definition-2 verification loop inside Algorithm 2 needs the full
``X_v(ω)`` matrix — one degree PMF per vertex — once per attempt, per σ
probe of the binary search.  Computing it as ``n`` scalar
:func:`repro.core.degree_pmf` calls is the dominant cost of the whole
obfuscation pipeline, so this module evaluates the matrix in three
vectorised passes over a CSR export of the incident probabilities
(:meth:`repro.uncertain.UncertainGraph.incident_probability_csr`):

* **Exact buckets** — vertices destined for the Lemma-1 DP are grouped
  by incident-candidate count ℓ; each group forms a dense ``(bucket, ℓ)``
  probability matrix and the DP fold runs as 2-D column operations, so
  one NumPy pass advances *every* vertex in the bucket by one Bernoulli.
  The fold is truncated at the requested ``width``: DP entry ``j``
  depends only on entries ``≤ j``, so the retained prefix is bit-for-bit
  identical to folding the full support and cutting afterwards.  Rows
  wider than the measured
  :data:`repro.core.degree_distribution.TREE_CROSSOVER_WIDTH` dispatch
  to the O(s log² s) tree-product/FFT kernel
  (:func:`poisson_binomial_pmf_tree`) under ``kernel="auto"``; the
  staircase remains the pinned oracle.
* **CLT batch** — large-ℓ vertices take the §4 normal approximation with
  a single ``(rows, width+1)`` array-``erf`` evaluation instead of a
  per-bin ``math.erf`` loop per vertex.
* **Empty vertices** — a direct ``X[v, 0] = 1`` write.

The scalar path (:func:`repro.core.degree_pmf` et al.) is kept as the
ground truth; equivalence tests pin the batched results to it at 1e-12.
"""

from __future__ import annotations

import numpy as np

from repro.core.degree_distribution import (
    AUTO_EXACT_LIMIT,
    TREE_CROSSOVER_WIDTH,
    _SQRT2,
    erf_array,
)
from repro.graphs.traversal import multi_range
from repro.obs.metrics import REGISTRY as _OBS

__all__ = [
    "poisson_binomial_pmf_batch",
    "poisson_binomial_pmf_tree",
    "normal_approx_pmf_batch",
    "degree_posterior_matrix",
    "degree_posterior_matrix_sharded",
    "fold_in_bernoulli",
    "fold_in_staircase",
    "fold_out_bernoulli",
    "IncrementalDegreePosterior",
    "TREE_FFT_MIN_DEGREE",
]

#: Fold-out stability bound: the inverse Lemma-1 recurrence amplifies
#: rounding error by ``(p/(1-p))^ω`` across the ω columns, so folding a
#: Bernoulli *out* of a DP row is only well-conditioned for ``p ≤ 1/2``.
#: The incremental engine recomputes rows whose removed entries exceed it.
FOLD_OUT_MAX_P = 0.5

#: Element budget (≈128 MB of float64) above which the staircase DP
#: streams addend columns from the CSR instead of building the dense
#: padded (rows, max-ℓ) matrix — forced-exact mode on skewed graphs
#: must not pay O(rows·max-ℓ) memory for a per-step gather it can do
#: in place.
_DENSE_ADDEND_BUDGET = 1 << 24

# Kernel-mix accounting (repro.obs): one attribute add per *call*, fed
# from row counts the dispatch already computed — observational only,
# never touching values or RNG streams.  The dispatch counters record
# only kernel="auto" decisions (the TREE_CROSSOVER_WIDTH split); the
# rows counters record where each row was actually evaluated.
_ROWS_STAIRCASE = _OBS.counter("posterior.rows.staircase")
_ROWS_TREE = _OBS.counter("posterior.rows.tree")
_ROWS_CLT = _OBS.counter("posterior.rows.clt")
_DISPATCH_TREE = _OBS.counter("posterior.dispatch.auto_tree")
_DISPATCH_STAIRCASE = _OBS.counter("posterior.dispatch.auto_staircase")
_FOLD_ROWS = _OBS.counter("posterior.fold.rows")
_FOLD_ROWS_TREE = _OBS.counter("posterior.fold.rows_tree")
_FOLD_ROWS_STAIRCASE = _OBS.counter("posterior.fold.rows_staircase")
_INC_FULL = _OBS.counter("posterior.incremental.full")
_INC_SKIPPED = _OBS.counter("posterior.incremental.skipped")
_INC_RECOMPUTED = _OBS.counter("posterior.incremental.recomputed")
_INC_FOLDED = _OBS.counter("posterior.incremental.folded")


def poisson_binomial_pmf_batch(
    prob_matrix: np.ndarray, *, support: int | None = None
) -> np.ndarray:
    """Lemma-1 DP over a whole batch of Bernoulli vectors at once.

    Runs the same shift-and-mix fold as
    :func:`repro.core.poisson_binomial_pmf`, but each step updates a
    2-D column slice, advancing every row of the batch simultaneously.
    Row ``r`` of the result equals ``poisson_binomial_pmf(prob_matrix[r])``
    bit-for-bit (identical IEEE operations in identical order).

    Parameters
    ----------
    prob_matrix:
        ``(rows, ℓ)`` matrix; row ``r`` holds the success probabilities
        of row ``r``'s Bernoulli addends.  Padding a row with zeros is a
        numerical no-op (``x·1 + y·0 = x`` exactly), so callers may pad
        ragged inputs — though the engine buckets by ℓ precisely to
        avoid wasting work on pad columns.
    support:
        Output has ``support + 1`` columns (default ℓ).  When
        ``support < ℓ`` the fold itself is truncated — cost drops from
        ``O(ℓ²)`` to ``O(ℓ·support)`` per row — and the retained entries
        still match the untruncated DP exactly (tail mass is dropped,
        never lumped, mirroring :func:`repro.core.degree_pmf`).

    Returns
    -------
    numpy.ndarray
        ``(rows, support + 1)`` matrix of point probabilities.
    """
    prob_matrix = np.asarray(prob_matrix, dtype=np.float64)
    if prob_matrix.ndim != 2:
        raise ValueError("prob_matrix must be 2-D (rows × addends)")
    rows, ell = prob_matrix.shape
    if prob_matrix.size and (
        prob_matrix.min() < 0.0 or prob_matrix.max() > 1.0
    ):
        raise ValueError("Bernoulli probabilities must lie in [0, 1]")
    width = ell if support is None else int(support)
    if width < 0:
        raise ValueError(f"support must be non-negative, got {support}")
    out = np.zeros((rows, width + 1), dtype=np.float64)
    out[:, 0] = 1.0
    for step in range(ell):
        p = prob_matrix[:, step : step + 1]
        filled = min(step + 1, width)
        out[:, 1 : filled + 1] = (
            out[:, 1 : filled + 1] * (1.0 - p) + out[:, :filled] * p
        )
        out[:, 0] *= 1.0 - p[:, 0]
    return out


#: Per-side polynomial degree at which a tree level's pairwise products
#: switch from direct shift-multiply-add convolution to real-FFT
#: convolution.  Below it the O(d²) direct form is a handful of fat
#: array ops; above it the O(d log d) transform wins despite the
#: power-of-two padding.
TREE_FFT_MIN_DEGREE = 32


def poisson_binomial_pmf_tree(
    prob_matrix: np.ndarray, *, support: int | None = None
) -> np.ndarray:
    """Poisson-binomial PMFs via hierarchical pairwise convolution.

    Each Bernoulli(p) is the degree-1 polynomial ``(1-p) + p·x``; the
    PMF of the sum is the product of all ℓ polynomials.  Instead of the
    staircase DP's one-at-a-time fold (O(ℓ·support) per row), the
    factors are multiplied *pairwise, leaf to root*: level ``k`` holds
    ``ℓ/2^k`` polynomials of degree ``2^k``, each pairwise product is a
    batched convolution — direct shift-multiply-add below
    :data:`TREE_FFT_MIN_DEGREE`, ``np.fft.rfft``/``irfft`` above — for
    a total of O(s log² s) per row on a support of width ``s``.

    Intermediate supports are truncated to the requested ``support``
    at every level: convolution coefficient ``j`` depends only on
    input coefficients ``≤ j``, so the retained prefix matches the
    untruncated product exactly (same dropped-tail convention as
    :func:`poisson_binomial_pmf_batch`).  The FFT path's round-trip
    rounding can leave coefficients a few ulp below zero; they are
    clipped to 0, and the result is pinned ≤1e-10 against the
    staircase oracle by the kernel tests.

    The leaf count is padded to a power of two with identity
    polynomials (``p = 0`` addends, a numerical no-op under direct
    convolution), so a row's level schedule — and hence its exact
    floating-point result — depends only on its own probabilities,
    ``ceil_pow2(ℓ)`` and ``support``.  :func:`degree_posterior_matrix`
    groups rows by that padded width precisely so ``kernel="auto"``
    output bit-matches a pure ``kernel="tree"`` pass.

    Parameters
    ----------
    prob_matrix:
        ``(rows, ℓ)`` matrix of Bernoulli success probabilities
        (zero-padding ragged rows is exact, as for the staircase).
    support:
        Output has ``support + 1`` columns (default ℓ); truncated tail
        mass is dropped, never lumped.

    Returns
    -------
    numpy.ndarray
        ``(rows, support + 1)`` matrix of point probabilities.
    """
    prob_matrix = np.asarray(prob_matrix, dtype=np.float64)
    if prob_matrix.ndim != 2:
        raise ValueError("prob_matrix must be 2-D (rows × addends)")
    rows, ell = prob_matrix.shape
    if prob_matrix.size and (
        prob_matrix.min() < 0.0 or prob_matrix.max() > 1.0
    ):
        raise ValueError("Bernoulli probabilities must lie in [0, 1]")
    width = ell if support is None else int(support)
    if width < 0:
        raise ValueError(f"support must be non-negative, got {support}")
    out = np.zeros((rows, width + 1), dtype=np.float64)
    if rows == 0:
        return out
    if ell == 0:
        out[:, 0] = 1.0
        return out
    if width == 0:
        # only the constant term survives: ∏(1-p)
        out[:, 0] = np.prod(1.0 - prob_matrix, axis=1)
        return out
    padded = 1 << (ell - 1).bit_length()
    polys = np.zeros((rows, padded, 2), dtype=np.float64)
    polys[:, :, 0] = 1.0
    polys[:, :ell, 0] = 1.0 - prob_matrix
    polys[:, :ell, 1] = prob_matrix
    while polys.shape[1] > 1:
        a = polys[:, 0::2]
        b = polys[:, 1::2]
        d = polys.shape[2] - 1
        out_deg = min(2 * d, width)
        if d < TREE_FFT_MIN_DEGREE:
            prod = np.zeros((rows, a.shape[1], out_deg + 1), dtype=np.float64)
            for t in range(min(d, out_deg) + 1):
                hi = min(d, out_deg - t)
                prod[:, :, t : t + hi + 1] += (
                    a[:, :, t : t + 1] * b[:, :, : hi + 1]
                )
        else:
            # nfft ≥ 2d+1 so the circular convolution never wraps into
            # the retained prefix, even when out_deg truncates.
            nfft = 1 << (2 * d).bit_length()
            fa = np.fft.rfft(a, nfft, axis=2)
            fa *= np.fft.rfft(b, nfft, axis=2)
            prod = np.fft.irfft(fa, nfft, axis=2)[:, :, : out_deg + 1]
            np.clip(prod, 0.0, None, out=prod)
        polys = prod
    # Degrees above ell are impossible; clip the copy there so FFT
    # round-off in the identity-padded tail never leaks past the true
    # support (the staircase writes exact zeros in those columns).
    keep = min(polys.shape[2], ell + 1)
    out[:, :keep] = polys[:, 0, :keep]
    return out


def _padded_leaf_widths(counts: np.ndarray) -> np.ndarray:
    """``ceil_pow2(count)`` per row — the tree kernel's leaf padding.

    ``frexp`` exponents are exact for integers below 2⁵³, so this is a
    branch-free vectorised ``1 << (count - 1).bit_length()`` (with
    ``count = 1 → 1``).
    """
    _, exp = np.frexp((np.asarray(counts, dtype=np.int64) - 1).astype(np.float64))
    return np.int64(1) << exp.astype(np.int64)


def _tree_fill(
    X: np.ndarray,
    vertices: np.ndarray,
    counts: np.ndarray,
    indptr: np.ndarray,
    data: np.ndarray,
    width: int,
) -> None:
    """Fill posterior rows via the tree kernel, grouped by padded width.

    Grouping rows by their padded leaf count keeps every row's level
    schedule a function of its own addend count alone, so a row lands
    on identical IEEE operations whether it arrived via
    ``kernel="tree"`` (all exact rows) or ``kernel="auto"`` (wide rows
    only) — the dispatch property the kernel tests pin bit-for-bit.
    """
    pow2 = _padded_leaf_widths(counts)
    for pw in np.unique(pow2):
        sel = np.flatnonzero(pow2 == pw)
        group = vertices[sel]
        cs = counts[sel]
        gmax = int(cs.max())
        P = np.zeros((len(group), gmax), dtype=np.float64)
        P[np.arange(gmax)[None, :] < cs[:, None]] = data[
            multi_range(indptr[group], cs)
        ]
        X[group, :width] = poisson_binomial_pmf_tree(P, support=width - 1)


def normal_approx_pmf_batch(
    mus: np.ndarray,
    variances: np.ndarray,
    lengths: np.ndarray,
    *,
    support: int,
) -> np.ndarray:
    """CLT degree PMFs for a batch of vertices in one array-``erf`` pass.

    Row ``r`` reproduces
    ``degree_pmf(probs_r, method="normal", support=support)`` given
    ``mus[r] = Σ p``, ``variances[r] = Σ p(1-p)`` and
    ``lengths[r] = ℓ_r`` (the addend count, which bounds the true
    support): the left tail is closed into bin 0, the right tail into
    bin ``ℓ_r`` when that bin is retained, entries beyond ``ℓ_r`` are
    zero, and rows with zero variance degenerate to a point mass.

    Parameters
    ----------
    mus, variances, lengths:
        Per-row moments and addend counts, all of shape ``(rows,)``.
    support:
        Output has ``support + 1`` columns; truncation drops tail mass.

    Returns
    -------
    numpy.ndarray
        ``(rows, support + 1)`` matrix of approximate point probabilities.
    """
    mus = np.asarray(mus, dtype=np.float64)
    variances = np.asarray(variances, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if not (mus.shape == variances.shape == lengths.shape) or mus.ndim != 1:
        raise ValueError("mus/variances/lengths must be equal-length 1-D arrays")
    width = int(support) + 1
    if width < 1:
        raise ValueError(f"support must be non-negative, got {support}")
    out = np.zeros((len(mus), width), dtype=np.float64)

    degenerate = variances <= 0.0
    if degenerate.any():
        # All addends are certain: the PMF is a delta at round(μ),
        # clipped to the true support like the scalar path.
        pos = np.minimum(lengths[degenerate], np.rint(mus[degenerate]).astype(np.int64))
        rows = np.flatnonzero(degenerate)
        retained = pos < width
        out[rows[retained], pos[retained]] = 1.0

    rows = np.flatnonzero(~degenerate)
    if rows.size:
        mu = mus[rows][:, None]
        sigma = np.sqrt(variances[rows])[:, None]
        ell = lengths[rows]
        grid = np.arange(width + 1, dtype=np.float64) - 0.5
        cdf = 0.5 * (1.0 + erf_array((grid[None, :] - mu) / (sigma * _SQRT2)))
        cdf[:, 0] = 0.0  # close the left tail into bin 0
        # Close the right tail into bin ℓ when that bin survives truncation.
        closable = np.flatnonzero(ell + 1 <= width)
        cdf[closable, ell[closable] + 1] = 1.0
        pmf = np.diff(cdf, axis=1)
        pmf[np.arange(width)[None, :] > ell[:, None]] = 0.0
        out[rows] = pmf
    return out


def degree_posterior_matrix(
    indptr: np.ndarray,
    data: np.ndarray,
    *,
    method: str = "auto",
    width: int | None = None,
    out: np.ndarray | None = None,
    kernel: str = "auto",
) -> np.ndarray:
    """The full ``(n, width)`` X matrix from CSR incident probabilities.

    Parameters
    ----------
    indptr, data:
        CSR grouping of per-vertex incident candidate probabilities, as
        produced by
        :meth:`repro.uncertain.UncertainGraph.incident_probability_csr`.
    method:
        ``"exact"`` (Lemma 1 DP for everyone), ``"normal"`` (CLT for
        everyone), or ``"auto"`` (exact up to
        :data:`repro.core.AUTO_EXACT_LIMIT` addends, CLT above) — the
        same per-vertex policy as the scalar
        :func:`repro.core.degree_pmf`.
    width:
        Number of degree columns (default: max addend count plus one,
        i.e. no truncation).  Truncated tail mass is dropped, never
        lumped.
    out:
        Optional preallocated ``(n, width)`` float64 buffer to fill and
        return (zeroed first) — the incremental engine reuses its
        matrix across rebuilds instead of allocating per attempt.
    kernel:
        Exact-row evaluation kernel: ``"staircase"`` (the Lemma-1 DP,
        O(ℓ²) per row), ``"tree"``
        (:func:`poisson_binomial_pmf_tree`, O(ℓ log² ℓ)), or ``"auto"``
        — staircase for rows up to
        :data:`repro.core.degree_distribution.TREE_CROSSOVER_WIDTH`
        addends (where it is measurably faster) and tree above.  Rows
        are kernel-batch-independent, so ``"auto"`` output bit-matches
        whichever kernel each row dispatches to.  The crossover sits
        above :data:`repro.core.AUTO_EXACT_LIMIT`, so ``method="auto"``
        results are identical for every ``kernel`` value.

    Returns
    -------
    numpy.ndarray
        ``(n, width)`` matrix; row ``v`` is the degree PMF of vertex
        ``v`` (possibly truncated).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    data = np.asarray(data, dtype=np.float64)
    if indptr.ndim != 1 or len(indptr) < 1:
        raise ValueError("indptr must be a non-empty 1-D array")
    n = len(indptr) - 1
    counts = np.diff(indptr)
    if width is None:
        width = int(counts.max(initial=0)) + 1
    width = int(width)
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if data.size and (data.min() < 0.0 or data.max() > 1.0):
        raise ValueError("Bernoulli probabilities must lie in [0, 1]")
    if method == "auto":
        exact_mask = counts <= AUTO_EXACT_LIMIT
    elif method == "exact":
        exact_mask = np.ones(n, dtype=bool)
    elif method == "normal":
        exact_mask = np.zeros(n, dtype=bool)
    else:
        raise ValueError(f"unknown method {method!r}; use exact/normal/auto")
    if kernel not in ("auto", "tree", "staircase"):
        raise ValueError(f"unknown kernel {kernel!r}; use staircase/tree/auto")

    if out is None:
        X = np.zeros((n, width), dtype=np.float64)
    else:
        if out.shape != (n, width) or out.dtype != np.float64:
            raise ValueError(f"out must be a float64 ({n}, {width}) array")
        X = out
        X[...] = 0.0

    exact_vertices = np.flatnonzero(exact_mask)
    if exact_vertices.size:
        exact_counts = counts[exact_vertices]
        if kernel == "staircase":
            tree_sel = np.zeros(len(exact_vertices), dtype=bool)
        elif kernel == "tree":
            tree_sel = exact_counts > 0
        else:
            tree_sel = exact_counts > TREE_CROSSOVER_WIDTH
        tree_vertices = exact_vertices[tree_sel]
        if kernel == "auto":
            _DISPATCH_TREE.add(tree_vertices.size)
            _DISPATCH_STAIRCASE.add(len(exact_vertices) - tree_vertices.size)
        _ROWS_TREE.add(tree_vertices.size)
        _ROWS_STAIRCASE.add(len(exact_vertices) - tree_vertices.size)
        if tree_vertices.size:
            _tree_fill(
                X, tree_vertices, exact_counts[tree_sel], indptr, data, width
            )
        exact_vertices = exact_vertices[~tree_sel]
        exact_counts = exact_counts[~tree_sel]
    if exact_vertices.size:
        # Staircase fold: vertices sorted by descending addend count form
        # a single matrix whose *active prefix* shrinks as the fold
        # advances — step s touches exactly the rows with ℓ > s.  One
        # Python-level iteration per degree level (max ℓ total) advances
        # every exact vertex by one Bernoulli; a row that runs out of
        # addends simply stops updating, leaving its finished PMF behind.
        # Per-element arithmetic is identical to the scalar DP.
        order = np.argsort(-exact_counts, kind="stable")
        sorted_vertices = exact_vertices[order]
        sorted_counts = exact_counts[order]
        # An exact row with ℓ addends has support ≤ ℓ, so the working
        # matrix never needs more than max-ℓ + 1 columns even when the
        # caller's width is larger (X's tail columns stay zero).
        rows = len(sorted_vertices)
        steps = int(sorted_counts[0])
        m_width = min(width, steps + 1)
        M = np.zeros((rows, m_width), dtype=np.float64)
        M[:, 0] = 1.0
        # Active-prefix schedule: step s touches the k_s rows with
        # ℓ > s; with rows in descending-ℓ order that is a prefix, and
        # the whole schedule is one histogram pass instead of a
        # searchsorted per step.
        hist = np.bincount(sorted_counts, minlength=steps + 1)
        ks = rows - np.cumsum(hist)[:steps] if steps else np.empty(0, np.int64)
        # Column-major padded addend matrix: PT[s] is step s's
        # probability column, a contiguous slice instead of a per-step
        # CSR gather; QT carries the complements, computed in one pass.
        # The dense pad costs O(rows·max-ℓ): fine for the auto bucket
        # (ℓ ≤ AUTO_EXACT_LIMIT) but a memory blow-up when exact mode is
        # forced on a skewed graph, so large workloads keep the
        # zero-copy per-step gather (same values, same arithmetic).
        starts = indptr[sorted_vertices]
        dense = rows * steps <= _DENSE_ADDEND_BUDGET
        if dense:
            P = np.zeros((rows, steps), dtype=np.float64)
            P[np.arange(steps)[None, :] < sorted_counts[:, None]] = data[
                multi_range(starts, sorted_counts)
            ]
            PT = np.ascontiguousarray(P.T)
            QT = 1.0 - PT
        for step in range(steps):
            k = int(ks[step])
            if dense:
                p = PT[step, :k, None]
                q = QT[step, :k, None]
            else:
                p = data[starts[:k] + step][:, None]
                q = 1.0 - p
            filled = min(step + 1, m_width - 1)
            # Three-dispatch in-place fold: the shifted term X(ω-1)·p is
            # materialised first, then the whole prefix (column 0
            # included) scales by 1-p and the shift is added back —
            # per-element IEEE operations identical to the fused
            # ``X·(1-p) + X₋₁·p`` / ``X₀·(1-p)`` pair of the scalar DP.
            shifted = M[:k, :filled] * p
            prefix = M[:k, : filled + 1]
            prefix *= q
            prefix[:, 1:] += shifted
        X[sorted_vertices, :m_width] = M

    clt_vertices = np.flatnonzero(~exact_mask)
    if clt_vertices.size:
        _ROWS_CLT.add(clt_vertices.size)
        mus, pqs = _segment_moments(
            data, indptr[clt_vertices], indptr[clt_vertices + 1]
        )
        X[clt_vertices] = normal_approx_pmf_batch(
            mus, pqs, counts[clt_vertices], support=width - 1
        )
    return X


def _posterior_rows_task(arg, shared):
    """One row shard of :func:`degree_posterior_matrix_sharded`."""
    lo, hi, method, width, kernel = arg
    indptr = shared["indptr"]
    data = shared["data"]
    sub_indptr = indptr[lo : hi + 1] - indptr[lo]
    sub_data = data[indptr[lo] : indptr[hi]]
    return degree_posterior_matrix(
        sub_indptr, sub_data, method=method, width=width, kernel=kernel
    )


def degree_posterior_matrix_sharded(
    indptr: np.ndarray,
    data: np.ndarray,
    *,
    executor,
    method: str = "auto",
    width: int | None = None,
    kernel: str = "auto",
    chunk_size: int | None = None,
) -> np.ndarray:
    """:func:`degree_posterior_matrix` dispatched as row-block shards.

    Rows are kernel-batch-independent (the pinned property that already
    licenses the staircase/tree/CLT split), so any contiguous row block
    evaluated against its own CSR slice produces bit-for-bit the rows
    the monolithic call would.  ``width`` is resolved *globally* first —
    a shard must not derive it from its local max addend count — then
    the plan follows :func:`repro.exec.plan.posterior_rows_chunk_size`
    (bounding each shard's output slab), and the CSR arrays travel to
    workers once via shared memory.

    Parameters other than ``executor`` (a
    :class:`~repro.exec.executor.ChunkExecutor`) and ``chunk_size``
    match :func:`degree_posterior_matrix`; ``out`` is unsupported here
    because shards allocate their own blocks.
    """
    from repro.exec.plan import ChunkPlan

    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    data = np.ascontiguousarray(data, dtype=np.float64)
    if indptr.ndim != 1 or len(indptr) < 1:
        raise ValueError("indptr must be a non-empty 1-D array")
    n = len(indptr) - 1
    if width is None:
        width = int(np.diff(indptr).max(initial=0)) + 1
    plan = ChunkPlan.posterior_rows(n, width=width, chunk_size=chunk_size)
    tasks = [(c.lo, c.hi, method, width, kernel) for c in plan]
    blocks = executor.map(
        _posterior_rows_task, tasks, shared={"indptr": indptr, "data": data}
    )
    if not blocks:
        return np.zeros((0, width), dtype=np.float64)
    return np.vstack(blocks)


def _segment_moments(
    data: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment CLT moments ``μ = Σ p`` and ``σ² = Σ p(1-p)``.

    Each segment is gathered and reduced with a left fold
    (``np.add.reduceat``) over its own entries only, so a segment's
    moments are a pure function of its slice of ``data`` — evaluating a
    *subset* of vertices yields bit-identical values to evaluating all
    of them.  That row independence (shared with the staircase DP, whose
    per-element arithmetic never crosses rows) is what lets
    :class:`IncrementalDegreePosterior` recompute only changed rows and
    still match a full :func:`degree_posterior_matrix` pass exactly.
    """
    counts = hi - lo
    mus = np.zeros(len(lo), dtype=np.float64)
    pqs = np.zeros(len(lo), dtype=np.float64)
    nonempty = np.flatnonzero(counts > 0)
    if nonempty.size:
        live = counts[nonempty]
        gathered = data[multi_range(lo[nonempty], live)]
        starts = np.cumsum(live) - live
        mus[nonempty] = np.add.reduceat(gathered, starts)
        pqs[nonempty] = np.add.reduceat(gathered * (1.0 - gathered), starts)
    return mus, pqs


def _incidence_csr(
    n: int, us: np.ndarray, vs: np.ndarray, ps: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical incidence CSR of a code-sorted pair list.

    Produces the exact layout of
    :meth:`repro.uncertain.UncertainGraph.incident_probability_csr`
    (per vertex: ``us``-side entries in pair order, then ``vs``-side
    entries in pair order) without sorting the full ``2m`` endpoint
    array: ``us`` is already non-decreasing when pairs are code-sorted,
    so only the ``vs`` side needs an argsort and both sides scatter to
    directly computed destinations.

    Returns ``(counts, indptr, data)``.
    """
    m = len(us)
    counts_us = np.bincount(us, minlength=n)
    counts_vs = np.bincount(vs, minlength=n)
    counts = counts_us + counts_vs
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    data = np.empty(2 * m, dtype=np.float64)
    if m:
        us_start = np.cumsum(counts_us) - counts_us
        data[indptr[us] + (np.arange(m) - us_start[us])] = ps
        # Stable sort of the vs side via one unstable sort of packed
        # (vertex, position) keys — positions occupy the low bits.
        pos_bits = max((m - 1).bit_length(), 1)
        packed = (vs << pos_bits) | np.arange(m)
        packed.sort()
        order_vs = packed & ((1 << pos_bits) - 1)
        vs_sorted = packed >> pos_bits
        vs_start = np.cumsum(counts_vs) - counts_vs
        dest_vs = (
            indptr[vs_sorted]
            + counts_us[vs_sorted]
            + (np.arange(m) - vs_start[vs_sorted])
        )
        data[dest_vs] = ps[order_vs]
    return counts, indptr, data


def fold_in_bernoulli(rows: np.ndarray, ps: np.ndarray) -> np.ndarray:
    """One Lemma-1 step per row: add a Bernoulli(``ps[r]``) to row ``r``.

    ``X'(ω) = X(ω)·(1-p) + X(ω-1)·p`` on the retained width — exactly
    the arithmetic of one :func:`poisson_binomial_pmf_batch` fold step,
    so folding a probability into a finished DP row is bit-identical to
    having included it in the original fold (the DP is order-independent
    up to floating-point; per-column ops here match the batch fold's).

    Parameters
    ----------
    rows:
        ``(r, width)`` matrix of (possibly truncated) DP rows.
    ps:
        One Bernoulli success probability per row.

    Returns
    -------
    numpy.ndarray
        New ``(r, width)`` matrix; inputs are not modified.
    """
    rows = np.asarray(rows, dtype=np.float64)
    ps = np.asarray(ps, dtype=np.float64)
    if rows.ndim != 2 or ps.shape != (rows.shape[0],):
        raise ValueError("rows must be (r, width) with one probability per row")
    if ps.size and (ps.min() < 0.0 or ps.max() > 1.0):
        raise ValueError("Bernoulli probabilities must lie in [0, 1]")
    p = ps[:, None]
    out = np.empty_like(rows)
    out[:, 1:] = rows[:, 1:] * (1.0 - p) + rows[:, :-1] * p
    out[:, 0] = rows[:, 0] * (1.0 - ps)
    return out


#: Degree buckets of :func:`fold_in_staircase`'s convolution pass: rows
#: are grouped by additions-PMF degree rounded up to these caps so each
#: bucket resolves as one batched window/coefficient contraction.
_FOLD_DEGREE_CAPS = (1, 2, 4, 8, 16, 32, 64, 1 << 30)


def fold_in_staircase(
    rows: np.ndarray,
    indptr: np.ndarray,
    data: np.ndarray,
    *,
    support: np.ndarray | None = None,
    active: np.ndarray | None = None,
    overwrite: bool = False,
    kernel: str = "auto",
) -> np.ndarray:
    """Fold a ragged batch of Bernoullis into warm DP rows.

    Row ``r`` receives the entries ``data[indptr[r]:indptr[r+1]]``: the
    result equals folding them in with :func:`fold_in_bernoulli` one by
    one (up to float reordering, ≤1e-12 — pinned by the fold tests).
    Rows with no entries pass through untouched.

    The evaluation is *two-stage* to stay dispatch-bound instead of
    Python-bound: first each row's entries collapse into their own
    Poisson-binomial PMF (a cold active-prefix staircase over a
    ``(rows, max-count + 1)`` matrix — tiny, since counts are bounded
    by the exact bucket), then that *product polynomial* is convolved
    into the warm row, bucketed by polynomial degree so each retained
    coefficient is one full-width multiply-add over the whole bucket.
    A sum of independent variables is the convolution of their PMFs, so
    the two-stage result is the same distribution as the sequential
    fold — only the floating-point grouping differs.

    This is the ``pair_keyed`` stream's hot loop: the per-probe base
    rows (original-edge entries only, stable across attempts) get each
    attempt's candidate *additions* folded in — for all attempts of a
    probe stacked into one call.

    Parameters
    ----------
    rows:
        ``(R, width)`` float64 matrix of DP rows (not modified unless
        ``overwrite``).
    indptr:
        ``(R + 1,)`` CSR offsets into ``data``.
    data:
        Bernoulli success probabilities, grouped per row.
    support:
        Optional per-row count of leading columns that may be non-zero
        on entry (e.g. ``kept degree + 1`` for base rows) — lets the
        convolution pass stop at each bucket's true final support
        instead of sweeping the full retained width.  Defaults to the
        full width (no assumption).
    active:
        Optional boolean row mask; rows outside it are left untouched
        even when they have entries (the probe path passes the whole
        posterior stack plus the all-rows additions CSR and masks the
        rows that will be recomputed outright).
    overwrite:
        When true, ``rows`` (which must be a C-contiguous float64
        array) is updated in place and returned — the probe path's
        stack is large enough that a defensive copy would dominate.
    kernel:
        Stage-1 product-polynomial kernel, per row-width:
        ``"staircase"``, ``"tree"``, or ``"auto"`` (staircase up to
        :data:`repro.core.degree_distribution.TREE_CROSSOVER_WIDTH`
        entries per row, the tree-product/FFT kernel above) — the same
        dispatch as :func:`degree_posterior_matrix`.

    Returns
    -------
    numpy.ndarray
        The ``(R, width)`` result — a new matrix, or ``rows`` itself
        when ``overwrite`` is set.
    """
    if overwrite:
        if (
            not isinstance(rows, np.ndarray)
            or rows.dtype != np.float64
            or not rows.flags.c_contiguous
        ):
            raise ValueError("overwrite=True needs a C-contiguous float64 array")
        out = rows
    else:
        rows = np.asarray(rows, dtype=np.float64)
        out = None
    indptr = np.asarray(indptr, dtype=np.int64)
    data = np.asarray(data, dtype=np.float64)
    if rows.ndim != 2 or len(indptr) != rows.shape[0] + 1:
        raise ValueError("rows must be (R, width) with R + 1 indptr offsets")
    if data.size and (data.min() < 0.0 or data.max() > 1.0):
        raise ValueError("Bernoulli probabilities must lie in [0, 1]")
    if kernel not in ("auto", "tree", "staircase"):
        raise ValueError(f"unknown kernel {kernel!r}; use staircase/tree/auto")
    width = rows.shape[1]
    counts = np.diff(indptr)
    if active is not None:
        counts = np.where(np.asarray(active, dtype=bool), counts, 0)
    if out is None:
        out = rows.copy()
    jmax = int(counts.max(initial=0))
    if jmax == 0:
        return out

    # Stage 1 — per-row product polynomials: the Poisson-binomial PMF
    # of each row's own entries, via the usual descending-count
    # staircase (support grows with the step, so the working width is
    # the step count, not the row width).
    live = np.flatnonzero(counts)
    order = live[np.argsort(-counts[live], kind="stable")]
    sorted_counts = counts[order]
    starts = indptr[order]
    poly = np.zeros((len(order), min(jmax, width - 1) + 1), dtype=np.float64)
    poly[:, 0] = 1.0
    if kernel == "staircase":
        nwide = 0
    elif kernel == "tree":
        nwide = len(order)
    else:
        # Descending sort ⇒ rows beyond the crossover form a prefix.
        nwide = int(
            np.searchsorted(-sorted_counts, -TREE_CROSSOVER_WIDTH, side="left")
        )
    _FOLD_ROWS.add(len(order))
    _FOLD_ROWS_TREE.add(nwide)
    _FOLD_ROWS_STAIRCASE.add(len(order) - nwide)
    if kernel == "auto":
        _DISPATCH_TREE.add(nwide)
        _DISPATCH_STAIRCASE.add(len(order) - nwide)
    if nwide:
        # Wide rows: product polynomial via the tree kernel, grouped by
        # padded leaf width (same per-row determinism as _tree_fill).
        pow2 = _padded_leaf_widths(sorted_counts[:nwide])
        sup = poly.shape[1] - 1
        for pw in np.unique(pow2):
            sel = np.flatnonzero(pow2 == pw)
            cs = sorted_counts[sel]
            gmax = int(cs.max())
            P = np.zeros((len(sel), gmax), dtype=np.float64)
            P[np.arange(gmax)[None, :] < cs[:, None]] = data[
                multi_range(starts[sel], cs)
            ]
            poly[sel] = poisson_binomial_pmf_tree(P, support=sup)
    narrow = len(order) - nwide
    if narrow:
        starts_n = starts[nwide:]
        counts_n = sorted_counts[nwide:]
        jnarrow = int(counts_n[0])
        hist = np.bincount(counts_n, minlength=jnarrow + 1)
        ks = narrow - np.cumsum(hist)[:jnarrow]
        dense = narrow * jnarrow <= _DENSE_ADDEND_BUDGET
        if dense:
            # Column-major padded addend matrix, filled with one flat
            # scatter (entry e of sorted row r lands at PT[e, r]) — far
            # cheaper than a boolean-masked assignment into (rows, jmax).
            total = int(counts_n.sum())
            flat_start = np.concatenate([[0], np.cumsum(counts_n[:-1])])
            within = np.arange(total, dtype=np.int64) - np.repeat(
                flat_start, counts_n
            )
            row_of = np.repeat(np.arange(narrow, dtype=np.int64), counts_n)
            PT = np.zeros((jnarrow, narrow), dtype=np.float64)
            PT[within, row_of] = data[multi_range(starts_n, counts_n)]
        npoly = poly[nwide:]
        for step in range(jnarrow):
            k = int(ks[step])
            p = PT[step, :k, None] if dense else data[starts_n[:k] + step][:, None]
            filled = min(step + 1, poly.shape[1] - 1)
            shifted = npoly[:k, :filled] * p
            prefix = npoly[:k, : filled + 1]
            prefix *= 1.0 - p
            prefix[:, 1:] += shifted

    # Stage 2 — convolve each polynomial into its warm row:
    # ``out[ω] = Σ_t base[ω-t]·poly[t]`` is a banded matvec, so each
    # degree bucket left-pads its rows with ``tcap`` zeros, views them
    # as sliding windows of ``tcap + 1`` columns and contracts against
    # the (reversed) coefficient vectors in one ``einsum`` — a handful
    # of fat dispatches instead of a per-entry fold loop.  Folding a
    # Bernoulli grows support by one, so each bucket also trims its
    # columns to the bucket's largest final support
    # (``support + degree``): on wide graphs the exact rows live far
    # below the retained width and the trim is the difference between
    # flop-bound and memory-bound.
    degree = np.minimum(sorted_counts, poly.shape[1] - 1)
    if poly.shape[1] == 1:
        # Width-1 rows truncate every polynomial to its constant term:
        # the "convolution" is a plain scale by ∏(1-p), which the
        # degree buckets below (which start at degree 1) never visit.
        out[order, 0] *= poly[:, 0]
        return out
    if support is None:
        final = np.full(len(order), width, dtype=np.int64)
    else:
        support = np.asarray(support, dtype=np.int64)
        if support.shape != (rows.shape[0],):
            raise ValueError("support must have one entry per row")
        final = np.minimum(support[order] + degree, width)
    # Rows are count-sorted descending, so each degree bucket — rows
    # with degree in (previous cap, cap] — is a contiguous slice.
    prev_cap = 0
    for cap in _FOLD_DEGREE_CAPS:
        if prev_cap >= jmax:
            break
        sel_hi = int(np.searchsorted(-degree, -prev_cap - 1, side="right"))
        sel_lo = int(np.searchsorted(-degree, -cap, side="left"))
        prev_cap = cap
        if sel_lo >= sel_hi:
            continue
        rows_b = order[sel_lo:sel_hi]
        tcap = int(degree[sel_lo])
        supcap = int(final[sel_lo:sel_hi].max())
        base_b = out[rows_b, :supcap]
        if tcap <= 2:
            # One or two coefficients: direct shift-multiply-adds beat
            # the window machinery.
            acc = base_b * poly[sel_lo:sel_hi, 0:1]
            for t in range(1, tcap + 1):
                acc[:, t:] += base_b[:, :-t] * poly[sel_lo:sel_hi, t : t + 1]
        else:
            padded = np.zeros((len(rows_b), tcap + supcap), dtype=np.float64)
            padded[:, tcap:] = base_b
            windows = np.lib.stride_tricks.sliding_window_view(
                padded, tcap + 1, axis=1
            )
            # windows[r, ω, i] = base[r, ω + i - tcap] pairs with poly
            # coefficient t = tcap - i.
            coeffs = np.ascontiguousarray(
                poly[sel_lo:sel_hi, : tcap + 1][:, ::-1]
            )
            acc = np.einsum("rwi,ri->rw", windows, coeffs)
        out[rows_b, :supcap] = acc
    return out


def fold_out_bernoulli(rows: np.ndarray, ps: np.ndarray) -> np.ndarray:
    """Inverse Lemma-1 step: remove a Bernoulli(``ps[r]``) from row ``r``.

    Solves the :func:`fold_in_bernoulli` recurrence forward in ω:
    ``X(0) = X'(0)/(1-p)``, ``X(ω) = (X'(ω) − X(ω-1)·p)/(1-p)`` — valid
    on truncated rows too, because the forward fold's entry ω depends
    only on entries ``≤ ω`` (truncation drops tail mass, never mixes it
    in).  Rounding error grows as ``(p/(1-p))^ω``, so the inversion is
    numerically trustworthy only for ``p ≤`` :data:`FOLD_OUT_MAX_P`;
    ``p = 1`` (a certain edge) is not invertible on a truncated row at
    all and raises.

    Parameters
    ----------
    rows:
        ``(r, width)`` matrix of DP rows that *include* the Bernoullis
        being removed.
    ps:
        One probability per row, each ``< 1``.

    Returns
    -------
    numpy.ndarray
        New ``(r, width)`` matrix; inputs are not modified.
    """
    rows = np.asarray(rows, dtype=np.float64)
    ps = np.asarray(ps, dtype=np.float64)
    if rows.ndim != 2 or ps.shape != (rows.shape[0],):
        raise ValueError("rows must be (r, width) with one probability per row")
    if ps.size and (ps.min() < 0.0 or ps.max() >= 1.0):
        raise ValueError("fold-out requires probabilities in [0, 1)")
    q = (1.0 - ps)[:, None]
    p = ps[:, None]
    out = np.empty_like(rows)
    out[:, 0] = rows[:, 0] / q[:, 0]
    for omega in range(1, rows.shape[1]):
        out[:, omega] = (rows[:, omega] - out[:, omega - 1] * p[:, 0]) / q[:, 0]
    return out


class IncrementalDegreePosterior:
    """``X_v(ω)`` maintained across a sequence of candidate graphs.

    Algorithm 2's attempts (and the σ probes around them) emit a stream
    of candidate sets that overlap heavily in *structure* — the original
    edge set always survives — even when most probabilities are redrawn.
    Instead of rebuilding the whole posterior per attempt, this engine
    diffs each new candidate set against the previous one at the pair
    level and touches only vertices with a changed incident entry:

    * vertices whose incident ``(pair, probability)`` multiset is
      unchanged keep their cached PMF row untouched;
    * changed vertices are recomputed through the same staircase/CLT
      passes as :func:`degree_posterior_matrix`.  Those passes are
      row-independent (see :func:`_segment_moments`), so the selective
      update is **bit-identical** to a full recompute — the property the
      seed-equivalence tests of the array engine rely on;
    * with ``fold=True``, a changed vertex whose diff is small gets its
      removed Bernoullis folded *out* of the cached row
      (:func:`fold_out_bernoulli`) and the added ones folded back in —
      O(width) per changed entry instead of O(ℓ·width) per row — at the
      cost of ≤1e-12 drift, pinned by the oracle tests.  Rows whose
      removed entries exceed :data:`FOLD_OUT_MAX_P`, or that enter or
      leave the exact bucket, are recomputed regardless.

    The returned matrix is owned by the engine and valid until the next
    update; callers that need persistence must copy.
    """

    def __init__(
        self, n: int, *, width: int, method: str = "auto", fold: bool = False
    ):
        if n < 0:
            raise ValueError(f"number of vertices must be non-negative, got {n}")
        if width < 1:
            raise ValueError(f"width must be positive, got {width}")
        if method not in ("auto", "exact", "normal"):
            raise ValueError(f"unknown method {method!r}; use exact/normal/auto")
        self._n = int(n)
        self._width = int(width)
        self._method = method
        self._fold = bool(fold)
        self._codes: np.ndarray | None = None  # sorted pair codes
        self._ps: np.ndarray | None = None  # aligned probabilities
        self._counts: np.ndarray | None = None  # per-vertex incident counts
        self._indptr: np.ndarray | None = None  # canonical incidence CSR
        self._data: np.ndarray | None = None
        self._X: np.ndarray | None = None
        #: Update accounting: full rebuilds, rows left untouched, rows
        #: recomputed, rows updated via fold-out/fold-in.
        self.stats = {"full": 0, "skipped": 0, "recomputed": 0, "folded": 0}

    @property
    def matrix(self) -> np.ndarray | None:
        """The current ``(n, width)`` X matrix (``None`` before any update)."""
        return self._X

    def update(self, uncertain) -> np.ndarray:
        """Convenience wrapper: update from an UncertainGraph's pair arrays."""
        us, vs, ps = uncertain.pair_arrays()
        return self.update_from_pairs(us, vs, ps)

    def update_from_pairs(
        self,
        us: np.ndarray,
        vs: np.ndarray,
        ps: np.ndarray,
        *,
        codes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance the engine to the candidate set ``(us, vs, ps)``.

        Parameters
        ----------
        us, vs:
            Pair endpoints (any order; normalised internally).
        ps:
            Pair probabilities in [0, 1]; ``p = 0`` entries are kept, as
            Algorithm 2's ``keep_zero`` bookkeeping does.
        codes:
            Optional precomputed sorted codes ``u·n + v`` (with
            ``u < v``, strictly increasing) aligned with ``us``/``vs``/
            ``ps`` — the array candidate builder already has them.

        Returns
        -------
        numpy.ndarray
            The ``(n, width)`` posterior matrix after the update.
        """
        n = self._n
        if codes is None:
            us = np.ascontiguousarray(us, dtype=np.int64).ravel()
            vs = np.ascontiguousarray(vs, dtype=np.int64).ravel()
            lo = np.minimum(us, vs)
            hi = np.maximum(us, vs)
            codes = lo * np.int64(n) + hi
            order = np.argsort(codes, kind="stable")
            codes = codes[order]
            us, vs = lo[order], hi[order]
            ps = np.ascontiguousarray(ps, dtype=np.float64).ravel()[order]
        else:
            codes = np.asarray(codes, dtype=np.int64)
            us = np.asarray(us, dtype=np.int64)
            vs = np.asarray(vs, dtype=np.int64)
            ps = np.asarray(ps, dtype=np.float64)
        if not (len(us) == len(vs) == len(ps) == len(codes)):
            raise ValueError("us/vs/ps/codes must have equal lengths")
        if codes.size:
            if np.any(np.diff(codes) <= 0):
                raise ValueError("pair codes must be strictly increasing")
            if (us == vs).any():
                raise ValueError("pairs must have distinct endpoints")
            if us.min() < 0 or vs.max() >= n:
                raise ValueError(f"vertex ids must lie in [0, {n})")
            if not ((ps >= 0.0) & (ps <= 1.0)).all():
                raise ValueError("probabilities must lie in [0, 1]")

        # Canonical incidence CSR — same layout (and hence the same
        # per-vertex fold order) as incident_probability_csr().
        counts, indptr, data = _incidence_csr(n, us, vs, ps)

        if self._X is None:
            self._X = degree_posterior_matrix(
                indptr, data, method=self._method, width=self._width
            )
            self.stats["full"] += 1
            _INC_FULL.add(1)
        elif np.array_equal(codes, self._codes):
            # Identical pair structure: the diff is a plain elementwise
            # probability comparison, no merge needed.
            diff = np.flatnonzero(self._ps != ps)
            if diff.size:
                self._update_changed(
                    codes[diff], self._ps[diff], codes[diff], ps[diff],
                    counts, indptr, data,
                )
            else:
                self.stats["skipped"] += n
                _INC_SKIPPED.add(n)
        elif self._mostly_changed(codes, ps):
            self._X = degree_posterior_matrix(
                indptr, data, method=self._method, width=self._width, out=self._X
            )
            self.stats["full"] += 1
            _INC_FULL.add(1)
        else:
            rem_codes, rem_ps, add_codes, add_ps = self._diff_pairs(codes, ps)
            self._update_changed(
                rem_codes, rem_ps, add_codes, add_ps, counts, indptr, data
            )
        self._codes, self._ps = codes, ps
        self._counts, self._indptr, self._data = counts, indptr, data
        return self._X

    # ------------------------------------------------------------------
    # diff machinery
    # ------------------------------------------------------------------
    def _mostly_changed(self, codes, ps) -> bool:
        """Subsample shortcut: when no sampled pair carried over with an
        identical probability, skip the merge bookkeeping and rebuild in
        one pass.  Purely a heuristic — a full rebuild is bit-identical
        to a selective recompute, so a wrong guess costs time, never
        correctness."""
        old_codes, old_ps = self._codes, self._ps
        if not len(old_codes) or not len(codes):
            return True
        step = max(len(codes) // 32, 1)
        sample, sample_ps = codes[::step], ps[::step]
        pos = np.minimum(
            np.searchsorted(old_codes, sample), len(old_codes) - 1
        )
        carried = (old_codes[pos] == sample) & (old_ps[pos] == sample_ps)
        return not carried.any()

    def _diff_pairs(self, codes, ps):
        """Symmetric difference vs the previous pair list.

        An entry counts as *carried* only when both its code and its
        probability are bit-equal; everything else becomes a removed
        (old) and/or added (new) entry.
        """
        old_codes, old_ps = self._codes, self._ps
        pos = np.searchsorted(old_codes, codes)
        pos_clip = np.minimum(pos, max(len(old_codes) - 1, 0))
        if len(old_codes):
            in_old = (pos < len(old_codes)) & (old_codes[pos_clip] == codes)
            carried = in_old & (old_ps[pos_clip] == ps)  # bit-equal probability
        else:
            carried = np.zeros(len(codes), dtype=bool)
        added = ~carried
        matched_old = np.zeros(len(old_codes), dtype=bool)
        matched_old[pos_clip[carried]] = True
        removed = ~matched_old
        return old_codes[removed], old_ps[removed], codes[added], ps[added]

    def _update_changed(
        self, rem_codes, rem_ps, add_codes, add_ps, counts, indptr, data
    ) -> None:
        n = self._n
        changed = np.zeros(n, dtype=bool)
        for side in (rem_codes // n, rem_codes % n, add_codes // n, add_codes % n):
            changed[side] = True
        n_changed = int(changed.sum())
        self.stats["skipped"] += n - n_changed
        _INC_SKIPPED.add(n - n_changed)
        if n_changed == 0:
            return

        fold_mask = np.zeros(n, dtype=bool)
        if self._fold:
            fold_mask = self._fold_eligible(
                changed, counts, rem_codes, rem_ps, add_codes
            )
            if fold_mask.any():
                self._fold_rows(fold_mask, rem_codes, rem_ps, add_codes, add_ps)
                self.stats["folded"] += int(fold_mask.sum())
                _INC_FOLDED.add(int(fold_mask.sum()))

        recompute = np.flatnonzero(changed & ~fold_mask)
        if recompute.size:
            sub_counts = counts[recompute]
            sub_indptr = np.zeros(len(recompute) + 1, dtype=np.int64)
            np.cumsum(sub_counts, out=sub_indptr[1:])
            sub_data = data[multi_range(indptr[recompute], sub_counts)]
            self._X[recompute] = degree_posterior_matrix(
                sub_indptr, sub_data, method=self._method, width=self._width
            )
            self.stats["recomputed"] += len(recompute)
            _INC_RECOMPUTED.add(len(recompute))

    def _fold_eligible(self, changed, counts, rem_codes, rem_ps, add_codes):
        """Changed vertices whose diff is small, stable, and exact-bucket."""
        n = self._n
        rem_count = np.bincount(
            np.concatenate([rem_codes // n, rem_codes % n]), minlength=n
        )
        add_count = np.bincount(
            np.concatenate([add_codes // n, add_codes % n]), minlength=n
        )
        rem_maxp = np.zeros(n, dtype=np.float64)
        if rem_codes.size:
            ends = np.concatenate([rem_codes // n, rem_codes % n])
            np.maximum.at(rem_maxp, ends, np.concatenate([rem_ps, rem_ps]))
        if self._method == "exact":
            exactable = np.ones(n, dtype=bool)
        elif self._method == "normal":
            exactable = np.zeros(n, dtype=bool)
        else:
            exactable = (counts <= AUTO_EXACT_LIMIT) & (
                self._counts <= AUTO_EXACT_LIMIT
            )
        return (
            changed
            & exactable
            & (rem_maxp <= FOLD_OUT_MAX_P)
            & (rem_count + add_count < counts)
        )

    def _fold_rows(self, fold_mask, rem_codes, rem_ps, add_codes, add_ps) -> None:
        """Fold removed entries out of, and added entries into, cached rows."""
        vertices = np.flatnonzero(fold_mask)
        index_of = np.full(self._n, -1, dtype=np.int64)
        index_of[vertices] = np.arange(len(vertices))
        rows = self._X[vertices]
        for entry_codes, entry_ps, op in (
            (rem_codes, rem_ps, fold_out_bernoulli),
            (add_codes, add_ps, fold_in_bernoulli),
        ):
            ends = np.concatenate([entry_codes // self._n, entry_codes % self._n])
            probs = np.concatenate([entry_ps, entry_ps])
            keep = fold_mask[ends]
            ends, probs = ends[keep], probs[keep]
            if not len(ends):
                continue
            rows_idx = index_of[ends]
            # Staircase over the ragged per-vertex entry lists: vertices
            # sorted by descending entry count form a shrinking prefix.
            group_counts = np.bincount(rows_idx, minlength=len(vertices))
            order = np.argsort(-group_counts, kind="stable")
            seg_start = np.zeros(len(vertices), dtype=np.int64)
            np.cumsum(group_counts[order][:-1], out=seg_start[1:])
            entry_order = np.argsort(
                np.argsort(order, kind="stable")[rows_idx], kind="stable"
            )
            probs = probs[entry_order]
            sorted_counts = group_counts[order]
            for step in range(int(sorted_counts.max(initial=0))):
                k = int(np.searchsorted(-sorted_counts, -(step + 1), side="right"))
                target = order[:k]
                rows[target] = op(rows[target], probs[seg_start[:k] + step])
        self._X[vertices] = rows
