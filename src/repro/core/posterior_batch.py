"""Batched Poisson-binomial posterior engine (§4, vectorised).

The Definition-2 verification loop inside Algorithm 2 needs the full
``X_v(ω)`` matrix — one degree PMF per vertex — once per attempt, per σ
probe of the binary search.  Computing it as ``n`` scalar
:func:`repro.core.degree_pmf` calls is the dominant cost of the whole
obfuscation pipeline, so this module evaluates the matrix in three
vectorised passes over a CSR export of the incident probabilities
(:meth:`repro.uncertain.UncertainGraph.incident_probability_csr`):

* **Exact buckets** — vertices destined for the Lemma-1 DP are grouped
  by incident-candidate count ℓ; each group forms a dense ``(bucket, ℓ)``
  probability matrix and the DP fold runs as 2-D column operations, so
  one NumPy pass advances *every* vertex in the bucket by one Bernoulli.
  The fold is truncated at the requested ``width``: DP entry ``j``
  depends only on entries ``≤ j``, so the retained prefix is bit-for-bit
  identical to folding the full support and cutting afterwards.
* **CLT batch** — large-ℓ vertices take the §4 normal approximation with
  a single ``(rows, width+1)`` array-``erf`` evaluation instead of a
  per-bin ``math.erf`` loop per vertex.
* **Empty vertices** — a direct ``X[v, 0] = 1`` write.

The scalar path (:func:`repro.core.degree_pmf` et al.) is kept as the
ground truth; equivalence tests pin the batched results to it at 1e-12.
"""

from __future__ import annotations

import numpy as np

from repro.core.degree_distribution import AUTO_EXACT_LIMIT, _SQRT2, erf_array

__all__ = [
    "poisson_binomial_pmf_batch",
    "normal_approx_pmf_batch",
    "degree_posterior_matrix",
]


def poisson_binomial_pmf_batch(
    prob_matrix: np.ndarray, *, support: int | None = None
) -> np.ndarray:
    """Lemma-1 DP over a whole batch of Bernoulli vectors at once.

    Runs the same shift-and-mix fold as
    :func:`repro.core.poisson_binomial_pmf`, but each step updates a
    2-D column slice, advancing every row of the batch simultaneously.
    Row ``r`` of the result equals ``poisson_binomial_pmf(prob_matrix[r])``
    bit-for-bit (identical IEEE operations in identical order).

    Parameters
    ----------
    prob_matrix:
        ``(rows, ℓ)`` matrix; row ``r`` holds the success probabilities
        of row ``r``'s Bernoulli addends.  Padding a row with zeros is a
        numerical no-op (``x·1 + y·0 = x`` exactly), so callers may pad
        ragged inputs — though the engine buckets by ℓ precisely to
        avoid wasting work on pad columns.
    support:
        Output has ``support + 1`` columns (default ℓ).  When
        ``support < ℓ`` the fold itself is truncated — cost drops from
        ``O(ℓ²)`` to ``O(ℓ·support)`` per row — and the retained entries
        still match the untruncated DP exactly (tail mass is dropped,
        never lumped, mirroring :func:`repro.core.degree_pmf`).

    Returns
    -------
    numpy.ndarray
        ``(rows, support + 1)`` matrix of point probabilities.
    """
    prob_matrix = np.asarray(prob_matrix, dtype=np.float64)
    if prob_matrix.ndim != 2:
        raise ValueError("prob_matrix must be 2-D (rows × addends)")
    rows, ell = prob_matrix.shape
    if prob_matrix.size and (
        prob_matrix.min() < 0.0 or prob_matrix.max() > 1.0
    ):
        raise ValueError("Bernoulli probabilities must lie in [0, 1]")
    width = ell if support is None else int(support)
    if width < 0:
        raise ValueError(f"support must be non-negative, got {support}")
    out = np.zeros((rows, width + 1), dtype=np.float64)
    out[:, 0] = 1.0
    for step in range(ell):
        p = prob_matrix[:, step : step + 1]
        filled = min(step + 1, width)
        out[:, 1 : filled + 1] = (
            out[:, 1 : filled + 1] * (1.0 - p) + out[:, :filled] * p
        )
        out[:, 0] *= 1.0 - p[:, 0]
    return out


def normal_approx_pmf_batch(
    mus: np.ndarray,
    variances: np.ndarray,
    lengths: np.ndarray,
    *,
    support: int,
) -> np.ndarray:
    """CLT degree PMFs for a batch of vertices in one array-``erf`` pass.

    Row ``r`` reproduces
    ``degree_pmf(probs_r, method="normal", support=support)`` given
    ``mus[r] = Σ p``, ``variances[r] = Σ p(1-p)`` and
    ``lengths[r] = ℓ_r`` (the addend count, which bounds the true
    support): the left tail is closed into bin 0, the right tail into
    bin ``ℓ_r`` when that bin is retained, entries beyond ``ℓ_r`` are
    zero, and rows with zero variance degenerate to a point mass.

    Parameters
    ----------
    mus, variances, lengths:
        Per-row moments and addend counts, all of shape ``(rows,)``.
    support:
        Output has ``support + 1`` columns; truncation drops tail mass.

    Returns
    -------
    numpy.ndarray
        ``(rows, support + 1)`` matrix of approximate point probabilities.
    """
    mus = np.asarray(mus, dtype=np.float64)
    variances = np.asarray(variances, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if not (mus.shape == variances.shape == lengths.shape) or mus.ndim != 1:
        raise ValueError("mus/variances/lengths must be equal-length 1-D arrays")
    width = int(support) + 1
    if width < 1:
        raise ValueError(f"support must be non-negative, got {support}")
    out = np.zeros((len(mus), width), dtype=np.float64)

    degenerate = variances <= 0.0
    if degenerate.any():
        # All addends are certain: the PMF is a delta at round(μ),
        # clipped to the true support like the scalar path.
        pos = np.minimum(lengths[degenerate], np.rint(mus[degenerate]).astype(np.int64))
        rows = np.flatnonzero(degenerate)
        retained = pos < width
        out[rows[retained], pos[retained]] = 1.0

    rows = np.flatnonzero(~degenerate)
    if rows.size:
        mu = mus[rows][:, None]
        sigma = np.sqrt(variances[rows])[:, None]
        ell = lengths[rows]
        grid = np.arange(width + 1, dtype=np.float64) - 0.5
        cdf = 0.5 * (1.0 + erf_array((grid[None, :] - mu) / (sigma * _SQRT2)))
        cdf[:, 0] = 0.0  # close the left tail into bin 0
        # Close the right tail into bin ℓ when that bin survives truncation.
        closable = np.flatnonzero(ell + 1 <= width)
        cdf[closable, ell[closable] + 1] = 1.0
        pmf = np.diff(cdf, axis=1)
        pmf[np.arange(width)[None, :] > ell[:, None]] = 0.0
        out[rows] = pmf
    return out


def degree_posterior_matrix(
    indptr: np.ndarray,
    data: np.ndarray,
    *,
    method: str = "auto",
    width: int | None = None,
) -> np.ndarray:
    """The full ``(n, width)`` X matrix from CSR incident probabilities.

    Parameters
    ----------
    indptr, data:
        CSR grouping of per-vertex incident candidate probabilities, as
        produced by
        :meth:`repro.uncertain.UncertainGraph.incident_probability_csr`.
    method:
        ``"exact"`` (Lemma 1 DP for everyone), ``"normal"`` (CLT for
        everyone), or ``"auto"`` (exact up to
        :data:`repro.core.AUTO_EXACT_LIMIT` addends, CLT above) — the
        same per-vertex policy as the scalar
        :func:`repro.core.degree_pmf`.
    width:
        Number of degree columns (default: max addend count plus one,
        i.e. no truncation).  Truncated tail mass is dropped, never
        lumped.

    Returns
    -------
    numpy.ndarray
        ``(n, width)`` matrix; row ``v`` is the degree PMF of vertex
        ``v`` (possibly truncated).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    data = np.asarray(data, dtype=np.float64)
    if indptr.ndim != 1 or len(indptr) < 1:
        raise ValueError("indptr must be a non-empty 1-D array")
    n = len(indptr) - 1
    counts = np.diff(indptr)
    if width is None:
        width = int(counts.max(initial=0)) + 1
    width = int(width)
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if data.size and (data.min() < 0.0 or data.max() > 1.0):
        raise ValueError("Bernoulli probabilities must lie in [0, 1]")
    if method == "auto":
        exact_mask = counts <= AUTO_EXACT_LIMIT
    elif method == "exact":
        exact_mask = np.ones(n, dtype=bool)
    elif method == "normal":
        exact_mask = np.zeros(n, dtype=bool)
    else:
        raise ValueError(f"unknown method {method!r}; use exact/normal/auto")

    X = np.zeros((n, width), dtype=np.float64)

    exact_vertices = np.flatnonzero(exact_mask)
    if exact_vertices.size:
        # Staircase fold: vertices sorted by descending addend count form
        # a single matrix whose *active prefix* shrinks as the fold
        # advances — step s touches exactly the rows with ℓ > s.  One
        # Python-level iteration per degree level (max ℓ total) advances
        # every exact vertex by one Bernoulli; a row that runs out of
        # addends simply stops updating, leaving its finished PMF behind.
        # Per-element arithmetic is identical to the scalar DP.
        exact_counts = counts[exact_vertices]
        order = np.argsort(-exact_counts, kind="stable")
        sorted_vertices = exact_vertices[order]
        sorted_counts = exact_counts[order]
        M = np.zeros((len(sorted_vertices), width), dtype=np.float64)
        M[:, 0] = 1.0
        starts = indptr[sorted_vertices]
        neg_counts = -sorted_counts  # ascending, for searchsorted
        for step in range(int(sorted_counts[0])):
            k = np.searchsorted(neg_counts, -(step + 1), side="right")
            p = data[starts[:k] + step][:, None]
            filled = min(step + 1, width - 1)
            M[:k, 1 : filled + 1] = (
                M[:k, 1 : filled + 1] * (1.0 - p) + M[:k, :filled] * p
            )
            M[:k, 0] *= 1.0 - p[:, 0]
        X[sorted_vertices] = M

    clt_vertices = np.flatnonzero(~exact_mask)
    if clt_vertices.size:
        # Segment moments via prefix sums: μ_v = Σ p, σ²_v = Σ p(1-p).
        prefix_p = np.concatenate([[0.0], np.cumsum(data)])
        prefix_pq = np.concatenate([[0.0], np.cumsum(data * (1.0 - data))])
        lo, hi = indptr[clt_vertices], indptr[clt_vertices + 1]
        X[clt_vertices] = normal_approx_pmf_batch(
            prefix_p[hi] - prefix_p[lo],
            prefix_pq[hi] - prefix_pq[lo],
            counts[clt_vertices],
            support=width - 1,
        )
    return X
