"""Per-vertex degree distributions in uncertain graphs (§4 of the paper).

In an uncertain graph the degree of a vertex ``v`` is the sum of
independent Bernoulli variables — one per candidate pair incident to
``v`` (Equation 4) — i.e. a *Poisson-binomial* random variable.  The
paper offers two computation paths, both implemented here:

* **Exact dynamic program** (Lemma 1): fold the Bernoullis one at a time,
  ``Pr(d^ℓ = j) = Pr(d^{ℓ-1} = j-1)·p_ℓ + Pr(d^{ℓ-1} = j)·(1-p_ℓ)``,
  for a total cost quadratic in the number of incident pairs.
* **Normal approximation** (Central Limit Theorem): ``N(μ, σ²)`` with
  ``μ = Σ p_i`` and ``σ² = Σ p_i (1-p_i)``, integrated over unit bins
  ``[ω-1/2, ω+1/2]``.

``method="auto"`` uses the exact DP for small supports and switches to
the CLT for vertices with many incident candidate pairs — the same
trade-off §4 describes ("the normal approximation becomes very accurate"
once the number of addends reaches ≈ 30).
"""

from __future__ import annotations

import math

import numpy as np

#: Number of Bernoulli addends beyond which ``method="auto"`` switches
#: from the exact DP to the CLT approximation.  The paper cites n ≈ 30 as
#: the point where the CLT "becomes effective"; 64 is conservative.
AUTO_EXACT_LIMIT = 64

#: Support width above which exact rows dispatch from the Lemma-1
#: staircase DP to the tree-product/FFT kernel
#: (:func:`repro.core.posterior_batch.poisson_binomial_pmf_tree`) under
#: ``kernel="auto"``.  Measured on the batched engine: the staircase's
#: O(ℓ²) fold wins below ~96 addends (fewer dispatches, no pad waste),
#: the O(ℓ log² ℓ) tree wins above at every batch size — and keeping
#: the crossover strictly above :data:`AUTO_EXACT_LIMIT` means
#: ``method="auto"`` rows never change kernel, preserving the engine's
#: bit-for-bit pins against the scalar oracle.
TREE_CROSSOVER_WIDTH = 96

_SQRT2 = math.sqrt(2.0)

#: Maximum absolute error of :func:`erf_rational` (Abramowitz–Stegun
#: 7.1.26); the fallback tests pin against SciPy at this bound.
ERF_RATIONAL_MAX_ABS_ERROR = 1.5e-7

# A&S 7.1.26 coefficients: erf(x) ≈ 1 − (a₁t + … + a₅t⁵)·e^{−x²} with
# t = 1/(1 + p·x) for x ≥ 0, |error| ≤ 1.5e-7.
_AS_P = 0.3275911
_AS_COEFFS = (1.061405429, -1.453152027, 1.421413741, -0.284496736, 0.254829592)


def erf_rational(x: np.ndarray) -> np.ndarray:
    """Vectorised rational ``erf`` approximation (A&S 7.1.26, ≤1.5e-7).

    The no-SciPy fallback behind :func:`erf_array`: a Horner evaluation
    in ``t = 1/(1 + p·|x|)`` plus one ``exp`` — a handful of float64
    array passes instead of the former ``np.frompyfunc(math.erf)``
    object loop, whose per-element Python calls made the batched CLT
    posterior (and with it the incremental fold path) fall off a cliff
    on SciPy-less installs.  Odd symmetry handles negative inputs;
    ``±inf`` maps to ``±1`` and NaN propagates.
    """
    x = np.asarray(x, dtype=np.float64)
    a = np.abs(x)
    t = 1.0 / (1.0 + _AS_P * a)
    poly = np.full_like(t, _AS_COEFFS[0])
    for coeff in _AS_COEFFS[1:]:
        poly = poly * t + coeff
    with np.errstate(under="ignore"):
        # a = inf gives exp(-inf) = 0 → erf(±inf) = ±1 without a mask.
        magnitude = 1.0 - poly * t * np.exp(-(a * a))
    return np.copysign(magnitude, x)


try:  # SciPy ships a C-loop erf ufunc; the rational fallback keeps the
    from scipy.special import erf as _erf_ufunc  # dependency optional.
except ImportError:  # pragma: no cover - exercised only without scipy
    _erf_ufunc = erf_rational


def erf_array(x: np.ndarray) -> np.ndarray:
    """Elementwise ``erf`` over an array (SciPy ufunc when available).

    Without SciPy the call lands on :func:`erf_rational` (A&S 7.1.26,
    ≤1.5e-7 absolute) — accurate enough for the CLT degree posterior,
    whose continuity-corrected bins are themselves an O(1/√ℓ)
    approximation, and ~100× faster than the former ``math.erf`` object
    loop.
    """
    return np.asarray(_erf_ufunc(x), dtype=np.float64)


def poisson_binomial_pmf(probs: np.ndarray) -> np.ndarray:
    """Exact PMF of a sum of independent Bernoulli(p_i) variables.

    Implements the Lemma 1 dynamic program.  Cost is ``O(ℓ²)`` for ``ℓ``
    addends; each fold is a vectorised shift-and-mix.

    Parameters
    ----------
    probs:
        Success probabilities, each in [0, 1].

    Returns
    -------
    numpy.ndarray
        Array of length ``len(probs) + 1``; entry ``j`` is ``Pr(sum = j)``.
        Sums to 1 up to float rounding.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.size and (probs.min() < 0.0 or probs.max() > 1.0):
        raise ValueError("Bernoulli probabilities must lie in [0, 1]")
    pmf = np.zeros(probs.size + 1, dtype=np.float64)
    pmf[0] = 1.0
    filled = 1
    for p in probs:
        # pmf[:filled] holds the distribution of the partial sum
        pmf[1 : filled + 1] = pmf[1 : filled + 1] * (1.0 - p) + pmf[:filled] * p
        pmf[0] *= 1.0 - p
        filled += 1
    return pmf


def normal_approx_pmf(probs: np.ndarray, *, support: int | None = None) -> np.ndarray:
    """CLT approximation to the Poisson-binomial PMF.

    ``Pr(d = ω) ≈ Φ((ω+½-μ)/σ) − Φ((ω-½-μ)/σ)`` with the continuity
    correction of §4; the left tail of bin 0 is closed (integrates from
    −∞) and the right tail of the last bin to +∞, so the result sums to 1.

    Parameters
    ----------
    probs:
        Bernoulli success probabilities.
    support:
        Length of the returned PMF minus one (defaults to ``len(probs)``,
        the exact support).

    Returns
    -------
    numpy.ndarray
        Approximate PMF over ``{0, ..., support}``.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.size and (probs.min() < 0.0 or probs.max() > 1.0):
        raise ValueError("Bernoulli probabilities must lie in [0, 1]")
    size = int(probs.size if support is None else support)
    mu = float(probs.sum())
    var = float((probs * (1.0 - probs)).sum())
    if var <= 0.0:
        # Degenerate sum: all probabilities are 0 or 1.
        pmf = np.zeros(size + 1, dtype=np.float64)
        pmf[min(size, int(round(mu)))] = 1.0
        return pmf
    sigma = math.sqrt(var)
    edges = (np.arange(size + 2, dtype=np.float64) - 0.5 - mu) / (sigma * _SQRT2)
    cdf = 0.5 * (1.0 + erf_array(edges))
    cdf[0] = 0.0  # close the left tail into bin 0
    cdf[-1] = 1.0  # close the right tail into the last bin
    pmf = np.diff(cdf)
    return pmf


def degree_pmf(
    probs: np.ndarray,
    *,
    method: str = "exact",
    support: int | None = None,
) -> np.ndarray:
    """Degree PMF for a vertex given its incident candidate probabilities.

    Parameters
    ----------
    probs:
        Probabilities of the candidate pairs incident to the vertex.
    method:
        ``"exact"`` (Lemma 1 DP), ``"normal"`` (CLT), or ``"auto"``
        (exact below :data:`AUTO_EXACT_LIMIT` addends, CLT above).
    support:
        Optional padding/truncation length; the returned array has
        ``support + 1`` entries when given.  Truncation *drops* tail mass
        (it is never lumped into the last entry) so every retained entry
        keeps its exact point probability — this is what posterior-column
        queries require; the truncated row may then sum to < 1.

    Returns
    -------
    numpy.ndarray
        PMF over degrees ``{0, 1, ...}``.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if method == "auto":
        method = "exact" if probs.size <= AUTO_EXACT_LIMIT else "normal"
    if method == "exact":
        pmf = poisson_binomial_pmf(probs)
    elif method == "normal":
        pmf = normal_approx_pmf(probs)
    else:
        raise ValueError(f"unknown method {method!r}; use exact/normal/auto")
    if support is not None:
        out = np.zeros(support + 1, dtype=np.float64)
        keep = min(support + 1, pmf.size)
        out[:keep] = pmf[:keep]
        return out
    return pmf


def poisson_binomial_mean_var(probs: np.ndarray) -> tuple[float, float]:
    """Mean ``Σ p_i`` and variance ``Σ p_i (1-p_i)`` of the degree variable."""
    probs = np.asarray(probs, dtype=np.float64)
    return float(probs.sum()), float((probs * (1.0 - probs)).sum())
