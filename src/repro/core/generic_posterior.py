"""Monte-Carlo posteriors for arbitrary vertex properties (Equation 2).

§3 defines ``X_v(ω)`` for *any* vertex property P — degree is just the
one property (P1) whose X matrix has a closed form (the Poisson
binomial of §4).  For richer adversary knowledge — e.g. the
neighbourhood degree list of Thompson & Yao [30], or the radius-one
subgraph of Zhou & Pei [34], both discussed in §2 — Equation 2 must be
evaluated over the possible-world distribution directly.

This module estimates it by sampling: draw ``r`` worlds, evaluate
``P(v)`` in each, and accumulate empirical frequencies

    X̂_v(ω) = #{worlds where P_W(v) = ω} / r .

Rows of X̂ are proper distributions, so the Definition-2 entropy check
applies verbatim; Lemma 2 bounds each estimated cell within
``sqrt(ln(2/δ)/(2r))`` since the indicator is [0, 1]-bounded.

Two ready-made properties are provided:

* :func:`degree_property` — for cross-validation against the exact §4
  machinery;
* :func:`neighbor_degree_property` — the sorted multiset of neighbour
  degrees (a strictly stronger adversary than plain degree).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.sampling import WorldSampler
from repro.utils.entropy import entropy_bits
from repro.utils.rng import as_rng

#: A vertex property: maps (world, vertex) to a hashable value.
PropertyFn = Callable[[Graph, int], Hashable]


def degree_property(world: Graph, v: int) -> int:
    """P1 of the paper: the vertex degree."""
    return world.degree(v)


def neighbor_degree_property(world: Graph, v: int) -> tuple[int, ...]:
    """The sorted degrees of a vertex's neighbours (stronger than P1).

    An adversary knowing a target's friend count *and* how connected
    those friends are — the paper's §2 cites this family of attacks
    (Thompson & Yao)."""
    return tuple(sorted(world.degree(u) for u in world.neighbors(v)))


class SampledPropertyPosterior:
    """Empirical ``X̂_v(ω)`` over sampled possible worlds.

    Parameters
    ----------
    counts:
        ``counts[v][ω] = #worlds where P(v) = ω``.
    worlds:
        Sample size ``r``.

    Notes
    -----
    Mirrors :class:`repro.core.DegreePosterior` for arbitrary property
    domains; columns are indexed by property *value* instead of integer
    degree.
    """

    def __init__(self, counts: list[dict[Hashable, int]], worlds: int):
        if worlds < 1:
            raise ValueError(f"need at least one sampled world, got {worlds}")
        self._counts = counts
        self._worlds = worlds

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._counts)

    @property
    def num_worlds(self) -> int:
        """Sample size the estimates are based on."""
        return self._worlds

    def x_value(self, v: int, omega: Hashable) -> float:
        """``X̂_v(ω)`` — empirical probability that v has value ω."""
        return self._counts[v].get(omega, 0) / self._worlds

    def x_column(self, omega: Hashable) -> np.ndarray:
        """Unnormalised column over all vertices."""
        return np.array(
            [self.x_value(v, omega) for v in range(self.num_vertices)]
        )

    def column_entropy(self, omega: Hashable) -> float:
        """``H(Ŷ_ω)`` in bits; 0 for never-observed values."""
        col = self.x_column(omega)
        total = col.sum()
        if total <= 0:
            return 0.0
        return entropy_bits(col, normalize=True)

    def obfuscation_entropies(self, original_values: Sequence[Hashable]) -> np.ndarray:
        """Per-vertex ``H(Ŷ_{P(v)})`` for the original property values."""
        if len(original_values) != self.num_vertices:
            raise ValueError("need one original property value per vertex")
        cache: dict[Hashable, float] = {}
        out = np.empty(self.num_vertices, dtype=np.float64)
        for v, omega in enumerate(original_values):
            if omega not in cache:
                cache[omega] = self.column_entropy(omega)
            out[v] = cache[omega]
        return out

    def k_obfuscated(
        self, original_values: Sequence[Hashable], k: float
    ) -> np.ndarray:
        """Definition-2 mask under the sampled posterior."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self.obfuscation_entropies(original_values) >= np.log2(k) - 1e-12

    def tolerance_achieved(
        self, original_values: Sequence[Hashable], k: float
    ) -> float:
        """Empirical ε' — fraction of vertices not k-obfuscated."""
        mask = self.k_obfuscated(original_values, k)
        return float((~mask).sum()) / max(len(mask), 1)


def sample_property_posterior(
    uncertain: UncertainGraph,
    prop: PropertyFn,
    *,
    worlds: int,
    seed=None,
) -> SampledPropertyPosterior:
    """Estimate Equation 2 for an arbitrary property by world sampling.

    Parameters
    ----------
    uncertain:
        The published uncertain graph.
    prop:
        Property function ``(world, vertex) → hashable value``.
    worlds:
        Sample size ``r`` (Lemma 2 bounds each cell's error by
        ``sqrt(ln(2/δ)/(2r))``).
    seed:
        RNG seed/stream.

    Returns
    -------
    SampledPropertyPosterior
    """
    rng = as_rng(seed)
    sampler = WorldSampler(uncertain)
    n = uncertain.num_vertices
    counts: list[dict[Hashable, int]] = [{} for _ in range(n)]
    for _ in range(worlds):
        world = sampler.sample(seed=rng)
        for v in range(n):
            value = prop(world, v)
            counts[v][value] = counts[v].get(value, 0) + 1
    return SampledPropertyPosterior(counts, worlds)
