"""Algorithm 1 — minimal-uncertainty (k, ε)-obfuscation via binary search.

The driver doubles an initial σ upper bound until Algorithm 2 succeeds
(or the :class:`~repro.core.types.ObfuscationParams.sigma_max` cap is
hit), then bisects ``[0, σ_u]`` down to width ``delta``, keeping the
*last successful* — i.e. smallest-σ — obfuscation found.  Smaller σ means
less injected uncertainty, hence higher utility; the search realises the
paper's "inject the minimal amount of uncertainty" objective.

The result's run counters (``edges_processed``, ``rows_folded``,
``rows_recomputed``) are accumulated per call from each probe's
:class:`~repro.core.types.GenerationOutcome` — *not* from
:mod:`repro.obs` registry deltas, which are process-global and would
absorb the totals of any search running concurrently on another thread
(or of coalesced server work).  The registry still receives every
Algorithm-2 call's totals via ``generate.py`` for manifests and
``repro trace``; for a single search after ``reset_metrics()`` the two
accountings agree exactly (pinned by the counter-coherence tests).
"""

from __future__ import annotations

import time

from repro.core.generate import SearchContext, generate_obfuscation
from repro.core.types import (
    GenerationOutcome,
    ObfuscationParams,
    ObfuscationResult,
    SearchStep,
)
from repro.graphs.graph import Graph
from repro.obs.metrics import REGISTRY as _OBS
from repro.obs.trace import span
from repro.utils.rng import as_rng

_SEARCH_PROBES = _OBS.counter("search.probes")
_SEARCH_RUNS = _OBS.counter("search.runs")


def obfuscate(
    graph: Graph,
    k: float,
    eps: float,
    *,
    params: ObfuscationParams | None = None,
    seed=None,
    context: SearchContext | None = None,
    **overrides,
) -> ObfuscationResult:
    """Compute a minimal-σ (k, ε)-obfuscation of ``graph`` (Algorithm 1).

    Parameters
    ----------
    graph:
        The original graph ``G``.
    k, eps:
        Privacy requirement of Definition 2.
    params:
        Full parameter bundle; if omitted one is built from ``k``,
        ``eps`` and keyword ``overrides`` (e.g. ``c=3, q=0.05,
        delta=1e-4``).
    seed:
        RNG seed/stream; every Algorithm-2 probe draws from it in
        sequence, so a fixed seed reproduces the entire search.
    context:
        Optional :class:`repro.core.generate.SearchContext` to reuse
        (``obfuscate_with_fallback`` shares one across its ``c``
        escalations, replaying the doubling ladder's σ values against
        the memoised uniqueness/Q-weights).  Built internally when
        omitted.

    Returns
    -------
    ObfuscationResult
        ``success`` is False when even ``σ = sigma_max`` cannot reach the
        tolerance — the paper's remedy is retrying with larger ``c``
        (see Table 2's (*) entries).

    Examples
    --------
    >>> from repro.graphs import erdos_renyi
    >>> g = erdos_renyi(60, 0.15, seed=1)
    >>> result = obfuscate(g, k=3, eps=0.2, seed=7, attempts=2, delta=0.05)
    >>> result.success
    True
    """
    if params is None:
        params = ObfuscationParams(k=k, eps=eps, **overrides)
    elif overrides:
        raise TypeError("pass either a params bundle or keyword overrides, not both")
    rng = as_rng(seed)
    if context is None:
        context = SearchContext.for_params(graph, params)
    t0 = time.perf_counter()
    trace: list[SearchStep] = []
    # Run counters accumulate per call from each probe's outcome —
    # scoped to THIS search, so concurrent searches (threads, coalesced
    # server work) never absorb each other's totals.
    totals = {"pairs_drawn": 0, "rows_folded": 0, "rows_recomputed": 0}
    _SEARCH_RUNS.add(1)

    def probe(sigma: float, phase: str) -> GenerationOutcome:
        """One Algorithm-2 evaluation, recorded in the search trace."""
        _SEARCH_PROBES.add(1)
        with span("probe", sigma=sigma, phase=phase) as sp:
            outcome = generate_obfuscation(
                graph, sigma, params, seed=rng, context=context
            )
            sp.set(
                eps_achieved=outcome.eps_achieved,
                attempts=outcome.attempts_made,
                pairs_drawn=outcome.pairs_drawn,
            )
        totals["pairs_drawn"] += outcome.pairs_drawn
        totals["rows_folded"] += outcome.rows_folded
        totals["rows_recomputed"] += outcome.rows_recomputed
        trace.append(
            SearchStep(sigma=sigma, eps_achieved=outcome.eps_achieved, phase=phase)
        )
        return outcome

    def result(found: GenerationOutcome | None) -> ObfuscationResult:
        return ObfuscationResult(
            uncertain=found.uncertain if found is not None else None,
            sigma=found.sigma if found is not None else float("nan"),
            eps_achieved=(
                found.eps_achieved if found is not None else float("inf")
            ),
            params=params,
            trace=trace,
            edges_processed=totals["pairs_drawn"],
            rows_folded=totals["rows_folded"],
            rows_recomputed=totals["rows_recomputed"],
            elapsed_seconds=time.perf_counter() - t0,
        )

    with span(
        "obfuscate", k=params.k, eps=params.eps, c=params.c, engine=params.engine
    ):
        # Phase 1 (Lines 1-6): double σ_u until a (k, ε)-obfuscation
        # appears.
        sigma_upper = params.sigma_init
        found: GenerationOutcome | None = None
        with span("doubling"):
            while True:
                outcome = probe(sigma_upper, "doubling")
                if outcome.success:
                    found = outcome
                    break
                sigma_upper *= 2.0
                if sigma_upper > params.sigma_max:
                    return result(None)

        # Phase 2 (Lines 7-12): bisect [0, σ_u], keeping the smallest
        # success.
        sigma_lower = 0.0
        with span("bisection"):
            while sigma_lower + params.delta < sigma_upper:
                sigma_mid = 0.5 * (sigma_lower + sigma_upper)
                outcome = probe(sigma_mid, "bisection")
                if outcome.success:
                    found = outcome
                    sigma_upper = sigma_mid
                else:
                    sigma_lower = sigma_mid

        assert found is not None  # guaranteed by phase 1
        return result(found)


def obfuscate_with_fallback(
    graph: Graph,
    k: float,
    eps: float,
    *,
    c_values: tuple[float, ...] = (2.0, 3.0),
    seed=None,
    **overrides,
) -> ObfuscationResult:
    """Run :func:`obfuscate`, escalating ``c`` on failure (§7.1 protocol).

    The paper marks Table-2 entries where ``c = 2`` could not bracket a
    feasible σ and ``c = 3`` resolved it; this helper automates exactly
    that escalation and records the ``c`` actually used in the returned
    result's ``params``.

    All escalations share one :class:`~repro.core.generate.SearchContext`
    (``c`` does not enter the per-σ setup), so the second run's doubling
    ladder replays against memoised uniqueness/Q-weights.
    """
    rng = as_rng(seed)
    result: ObfuscationResult | None = None
    context: SearchContext | None = None
    for c in c_values:
        params = ObfuscationParams(k=k, eps=eps, c=c, **overrides)
        if context is None:
            context = SearchContext.for_params(graph, params)
        result = obfuscate(graph, k, eps, params=params, seed=rng, context=context)
        if result.success:
            return result
    assert result is not None
    return result
