"""Command-line interface: obfuscate, verify, analyse, sample.

Usage (also available as ``python -m repro``)::

    repro obfuscate --input graph.txt --k 20 --eps 0.05 --output release.txt
    repro verify    --original graph.txt --release release.txt --k 20 --eps 0.05
    repro stats     --release release.txt --worlds 100
    repro sample    --release release.txt --output world.txt --seed 7
    repro compare   --input graph.txt --p 0.3 --samples 50
    repro serve     --release release.txt --port 7687
    repro trace     run-dir/            # summarise a traced run

``graph.txt`` is a whitespace edge list (``u v`` per line, ``#``
comments); ``release.txt`` is the published uncertain graph (``u v p``
triples).  Every subcommand prints a short human-readable report to
stdout and exits non-zero on failure, so the tool composes in shell
pipelines.

Observability flags (after the subcommand name): ``-v``/``-vv`` for
progress logging on stderr, ``-q`` for errors only, and
``--trace [DIR]`` to record a span trace (``DIR/trace.jsonl``) plus a
schema-validated run manifest (``DIR/manifest.json``).  Tracing is
purely observational — a traced run's outputs are bit-identical to an
untraced one.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.core.obfuscation_check import is_k_eps_obfuscation
from repro.core.search import obfuscate_with_fallback
from repro.graphs.io import read_edge_list, write_edge_list
from repro.obs import (
    build_manifest,
    disable_tracing,
    enable_tracing,
    setup_logging,
    span,
    write_manifest,
)
from repro.stats.registry import paper_statistics
from repro.stats.sampling import WorldStatisticsEstimator
from repro.uncertain.io import read_uncertain_graph, write_uncertain_graph
from repro.uncertain.sampling import sample_world


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Identity obfuscation by uncertainty injection "
            "(Boldi, Bonchi, Gionis, Tassa; VLDB 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared observability flags.  Attached to the *subparsers* (not the
    # root) so their defaults cannot clobber root-level values — the
    # flags go after the subcommand name: ``repro obfuscate -v --trace``.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-vv for debug)",
    )
    common.add_argument(
        "-q", "--quiet", action="store_true", help="errors only"
    )
    common.add_argument(
        "--trace", dest="trace_dir", nargs="?", const="repro-trace",
        default=None, metavar="DIR",
        help="record DIR/trace.jsonl and DIR/manifest.json "
        "(default DIR: ./repro-trace)",
    )

    p = sub.add_parser(
        "obfuscate", parents=[common], help="compute a (k, eps)-obfuscation"
    )
    p.add_argument("--input", required=True, help="edge-list file of G")
    p.add_argument("--output", required=True, help="uncertain-graph output file")
    p.add_argument("--k", type=float, required=True, help="obfuscation level")
    p.add_argument("--eps", type=float, required=True, help="tolerance")
    p.add_argument("--c", type=float, default=2.0, help="candidate multiplier")
    p.add_argument("--q", type=float, default=0.01, help="white-noise level")
    p.add_argument("--attempts", type=int, default=5, help="tries per sigma")
    p.add_argument("--delta", type=float, default=1e-3, help="search precision")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--escalate-c",
        action="store_true",
        help="retry with c=3 then c=5 if the base c cannot bracket",
    )
    p.add_argument(
        "--engine",
        default="array",
        choices=("array", "sequential"),
        help="Algorithm-2 engine: vectorised 'array' (default) or the "
        "per-draw 'sequential' ground truth (same seed, same result)",
    )
    p.add_argument(
        "--stream",
        default="pair_keyed",
        choices=("pair_keyed", "attempt"),
        help="perturbation randomness: 'pair_keyed' (default) derives "
        "each pair's draw from a counter-based substream so the "
        "incremental posterior can fold across attempts; 'attempt' is "
        "the historical redraw-everything stream (pinned ground truth)",
    )

    p = sub.add_parser("verify", parents=[common], help="check Definition 2 on a release")
    p.add_argument("--original", required=True, help="edge-list file of G")
    p.add_argument("--release", required=True, help="uncertain-graph file")
    p.add_argument("--k", type=float, required=True)
    p.add_argument("--eps", type=float, required=True)

    p = sub.add_parser("stats", parents=[common], help="statistics of a release by sampling")
    p.add_argument("--release", required=True, help="uncertain-graph file")
    p.add_argument("--worlds", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend",
        default="anf",
        choices=("anf", "exact", "sampled"),
        help="distance-statistic backend",
    )
    p.add_argument(
        "--world-backend",
        default="batched",
        choices=("batched", "sequential"),
        help=(
            "world-sampling engine: 'batched' evaluates all worlds "
            "through the repro.worlds multi-world kernels, 'sequential' "
            "is the seed-equivalent one-world-at-a-time path"
        ),
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="processes for world evaluation (0 = all cores; batched "
        "backend only; results are bit-identical at any worker count)",
    )

    p = sub.add_parser("sample", parents=[common], help="draw one possible world")
    p.add_argument("--release", required=True, help="uncertain-graph file")
    p.add_argument("--output", required=True, help="edge-list output file")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "compare",
        parents=[common],
        help="Table-6 style comparison against randomized baselines",
        description=(
            "Sample randomized releases (sparsification/perturbation) of "
            "the input graph, average the ten paper statistics over them "
            "and report each scheme's relative error vs the original.  "
            "Give --p directly, or --k/--eps to calibrate it per scheme."
        ),
    )
    p.add_argument("--input", required=True, help="edge-list file of G")
    p.add_argument(
        "--schemes",
        nargs="+",
        default=["sparsification", "perturbation"],
        choices=("sparsification", "perturbation"),
        help="randomization schemes to evaluate",
    )
    p.add_argument(
        "--p",
        type=float,
        default=None,
        help="removal probability; calibrated from --k/--eps when omitted",
    )
    p.add_argument("--k", type=float, default=None, help="calibration target k")
    p.add_argument("--eps", type=float, default=None, help="calibration tolerance")
    p.add_argument(
        "--samples", type=int, default=50, help="releases per scheme (paper: 50)"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend",
        default="anf",
        choices=("anf", "exact", "sampled"),
        help="distance-statistic backend",
    )
    p.add_argument(
        "--baseline-backend",
        default="batched",
        choices=("batched", "sequential"),
        help=(
            "release engine: 'batched' draws all releases as one "
            "possible-world batch and measures them with the "
            "repro.worlds kernels, 'sequential' is the seed-equivalent "
            "one-release-at-a-time path"
        ),
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="processes for release evaluation (0 = all cores; batched "
        "backend only; results are bit-identical at any worker count)",
    )

    p = sub.add_parser(
        "serve",
        parents=[common],
        help="serve queries over a published release (TCP line-JSON)",
        description=(
            "Load a published uncertain graph and answer degree / "
            "reliability / k-hop / distance-distribution / k-NN queries "
            "from concurrent clients, coalescing concurrent queries into "
            "shared possible-world batches.  Every answer is seed-pinned "
            "to the sequential estimators of repro.uncertain.queries."
        ),
    )
    p.add_argument("--release", required=True, help="uncertain-graph file")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7687, help="0 picks a free port"
    )
    p.add_argument(
        "--worlds", type=int, default=64,
        help="default Monte-Carlo sample size per query",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--window-ms", type=float, default=2.0,
        help="query-coalescing window in milliseconds",
    )
    p.add_argument(
        "--max-queue", type=int, default=4096,
        help="bound on queued queries; beyond it requests are shed with "
        "an 'overloaded' error and a retry-after hint",
    )
    p.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="close connections idle for this many seconds (0 disables)",
    )

    p = sub.add_parser(
        "trace",
        help="summarise a traced run (trace.jsonl / manifest.json)",
        description=(
            "Print the per-phase span table, the heaviest spans, and the "
            "posterior kernel mix recorded by a --trace run.  PATH may be "
            "a trace.jsonl, a manifest.json, or a directory holding "
            "either."
        ),
    )
    p.add_argument(
        "path", help="trace.jsonl, manifest.json, or a run directory"
    )
    p.add_argument(
        "--top", type=int, default=10,
        help="max rows in the top-spans table (default 10)",
    )
    return parser


def _cmd_obfuscate(args) -> int:
    with span("read_input", path=str(args.input)):
        graph = read_edge_list(args.input)
    print(f"loaded {args.input}: n={graph.num_vertices} m={graph.num_edges}")
    c_values = (args.c, 3.0, 5.0) if args.escalate_c else (args.c,)
    result = obfuscate_with_fallback(
        graph,
        args.k,
        args.eps,
        c_values=c_values,
        seed=args.seed,
        q=args.q,
        attempts=args.attempts,
        delta=args.delta,
        engine=args.engine,
        stream=args.stream,
    )
    if not result.success:
        print(
            "FAILED: no (k, eps)-obfuscation found; try --escalate-c, a "
            "larger --eps, or a smaller --k",
            file=sys.stderr,
        )
        return 1
    with span("write_output", path=str(args.output)):
        write_uncertain_graph(result.uncertain, args.output)
    print(
        f"wrote {args.output}: sigma={result.sigma:.6g} "
        f"eps_achieved={result.eps_achieved:.6g} c={result.params.c:g} "
        f"({result.edges_per_second:,.0f} edges/sec)"
    )
    return 0


def _cmd_verify(args) -> int:
    graph = read_edge_list(args.original)
    release = read_uncertain_graph(args.release, n=graph.num_vertices)
    ok = is_k_eps_obfuscation(release, graph, args.k, args.eps)
    print(
        f"release {'IS' if ok else 'is NOT'} a "
        f"({args.k:g}, {args.eps:g})-obfuscation of {args.original}"
    )
    return 0 if ok else 2


def _cmd_stats(args) -> int:
    release = read_uncertain_graph(args.release)
    print(
        f"loaded {args.release}: n={release.num_vertices} "
        f"candidates={release.num_candidate_pairs} "
        f"E[edges]={release.expected_num_edges():.2f}"
    )
    stats = paper_statistics(distance_backend=args.backend, seed=args.seed)
    backend_options = (
        {"distance_backend": args.backend, "distance_seed": args.seed}
        if args.world_backend == "batched"
        else {}
    )
    executor = None
    if args.world_backend == "batched" and args.workers != 1:
        from repro.exec import make_executor

        executor = make_executor(args.workers)
        backend_options["executor"] = executor
    estimator = WorldStatisticsEstimator(
        release, stats, backend=args.world_backend, **backend_options
    )
    try:
        summaries = estimator.run(worlds=args.worlds, seed=args.seed)
    finally:
        if executor is not None:
            executor.close()
    print(f"{'statistic':<10} {'mean':>14} {'rel.SEM':>10}")
    for name, summary in summaries.items():
        print(f"{name:<10} {summary.mean:>14.6g} {summary.relative_sem:>10.2%}")
    return 0


def _cmd_compare(args) -> int:
    # Imported lazily: the experiments layer pulls in the full worlds
    # engine, which the other subcommands do not need.
    from repro.experiments.comparison import (
        baseline_utility_row,
        calibrate_randomization,
        original_row,
    )
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.report import render_table

    if args.p is None and (args.k is None or args.eps is None):
        print(
            "compare: give --p, or both --k and --eps for calibration",
            file=sys.stderr,
        )
        return 2
    graph = read_edge_list(args.input)
    print(f"loaded {args.input}: n={graph.num_vertices} m={graph.num_edges}")
    config = ExperimentConfig(
        baseline_samples=args.samples,
        seed=args.seed,
        distance_backend=args.backend,
        baseline_backend=args.baseline_backend,
    )
    rows = [original_row(graph, config)]
    import numpy as np

    executor = None
    if args.baseline_backend == "batched" and args.workers != 1:
        from repro.exec import make_executor

        executor = make_executor(args.workers)
    try:
        for scheme in args.schemes:
            p = args.p
            if p is None:
                p = calibrate_randomization(
                    graph,
                    scheme,
                    args.k,
                    args.eps,
                    seed=(args.seed, 17),
                    backend=args.baseline_backend,
                )
                if np.isnan(p):
                    print(
                        f"{scheme}: no grid p reaches k={args.k:g} at "
                        f"eps={args.eps:g}; row skipped"
                    )
                    continue
                print(f"{scheme}: calibrated p={p:g}")
            rows.append(
                baseline_utility_row(
                    graph, scheme, p, config, label=f"{scheme} (p={p:g})",
                    executor=executor,
                )
            )
    finally:
        if executor is not None:
            executor.close()
    print(render_table(rows))
    return 0


def _cmd_sample(args) -> int:
    release = read_uncertain_graph(args.release)
    world = sample_world(release, seed=args.seed)
    write_edge_list(world, args.output)
    print(f"wrote {args.output}: n={world.num_vertices} m={world.num_edges}")
    return 0


def _cmd_serve(args) -> int:
    # Imported lazily: the serving layer pulls in asyncio plumbing the
    # batch-oriented subcommands never need.
    import asyncio
    import signal

    from repro.serve import ObfuscationServer, QueryEngine

    with span("read_release", path=str(args.release)):
        release = read_uncertain_graph(args.release)
    engine = QueryEngine(release, worlds=args.worlds, seed=args.seed)
    server = ObfuscationServer(
        engine,
        host=args.host,
        port=args.port,
        window_ms=args.window_ms,
        max_queue=args.max_queue,
        idle_timeout_s=args.idle_timeout if args.idle_timeout > 0 else None,
    )
    print(
        f"loaded {args.release}: n={release.num_vertices} "
        f"candidates={release.num_candidate_pairs} worlds={args.worlds}"
    )

    async def run() -> None:
        await server.start()
        print(f"listening on {server.host}:{server.port}", flush=True)
        stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        # SIGTERM drains gracefully like ctrl-C: stop accepting, answer
        # every accepted query, then exit.
        try:
            loop.add_signal_handler(signal.SIGTERM, stopping.set)
        except NotImplementedError:  # pragma: no cover - non-unix loop
            pass
        try:
            await stopping.wait()  # until SIGTERM or KeyboardInterrupt
        finally:
            await server.stop()  # drains queue + in-flight window

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_trace(args) -> int:
    # Imported lazily: the reporting layer is only needed here.
    from repro.obs.report import resolve_run, summarise_run

    try:
        manifest, records = resolve_run(args.path)
    except (FileNotFoundError, ValueError) as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    print(summarise_run(manifest, records, top=args.top))
    return 0


_MANIFEST_SKIP_KEYS = frozenset(("command", "verbose", "quiet", "trace_dir"))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "obfuscate": _cmd_obfuscate,
        "verify": _cmd_verify,
        "stats": _cmd_stats,
        "sample": _cmd_sample,
        "compare": _cmd_compare,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
    }
    setup_logging(getattr(args, "verbose", 0), getattr(args, "quiet", False))
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is None:
        return handlers[args.command](args)

    # Traced run: spans stream to DIR/trace.jsonl while the command
    # executes, then the manifest (config, seed, span tree, metrics
    # dump) lands next to it.  All instrumentation is observational, so
    # the command's own outputs are bit-identical to an untraced run.
    trace_dir = Path(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    tracer = enable_tracing(trace_dir / "trace.jsonl")
    t0 = time.perf_counter()
    try:
        code = handlers[args.command](args)
    finally:
        disable_tracing()
    manifest = build_manifest(
        f"repro {args.command}",
        config={
            k: v for k, v in vars(args).items() if k not in _MANIFEST_SKIP_KEYS
        },
        seed=getattr(args, "seed", None),
        argv=list(argv) if argv is not None else sys.argv[1:],
        tracer=tracer,
        elapsed_s=time.perf_counter() - t0,
        results={"exit_code": code},
    )
    write_manifest(trace_dir / "manifest.json", manifest)
    print(f"trace written to {trace_dir}/", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
