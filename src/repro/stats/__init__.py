"""Utility statistics for certain and uncertain graphs (§6 of the paper)."""

from repro.stats.degree import (
    average_degree,
    degree_distribution,
    degree_variance,
    expected_average_degree,
    expected_num_edges,
    max_degree,
    num_edges,
    powerlaw_exponent,
)
from repro.stats.distance import (
    DistanceHistogram,
    average_distance,
    connectivity_length,
    diameter,
    distance_histogram,
    effective_diameter,
    pairwise_distance_distribution,
)
from repro.stats.registry import (
    PAPER_STATISTIC_NAMES,
    degree_only_statistics,
    paper_statistics,
)
from repro.stats.sampling import (
    SampleSummary,
    WorldStatisticsEstimator,
    estimate_statistic,
    hoeffding_error_probability,
    hoeffding_sample_size,
)

__all__ = [
    "num_edges",
    "average_degree",
    "max_degree",
    "degree_variance",
    "degree_distribution",
    "powerlaw_exponent",
    "expected_num_edges",
    "expected_average_degree",
    "DistanceHistogram",
    "distance_histogram",
    "average_distance",
    "effective_diameter",
    "connectivity_length",
    "diameter",
    "pairwise_distance_distribution",
    "SampleSummary",
    "WorldStatisticsEstimator",
    "estimate_statistic",
    "hoeffding_error_probability",
    "hoeffding_sample_size",
    "PAPER_STATISTIC_NAMES",
    "paper_statistics",
    "degree_only_statistics",
]
