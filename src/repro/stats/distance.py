"""Shortest-path-distance statistics (§6.3 of the paper).

All five measures are derived from the *distance histogram* — the count
of vertex pairs at each finite hop distance plus the count of
disconnected pairs:

* ``S_APD``  — average distance over path-connected pairs;
* ``S_EDiam`` — effective diameter: the 90th-percentile distance with
  the paper's linear interpolation "between the 90th percentile and the
  successive integer";
* ``S_CL``   — connectivity length: harmonic mean over *all* pairs with
  ``1/dist = 0`` for disconnected ones (Marchiori–Latora);
* ``S_PDD``  — the distance distribution itself (vector statistic);
* ``S_Diam`` — the exact diameter (max finite distance).

Three backends produce the histogram:

* :func:`distance_histogram` — exact, all-sources BFS (``O(n·m)``);
* the same function with ``sources`` — BFS from a sampled subset, the
  sampling estimators of [6, 18] cited in §6.3;
* :func:`repro.anf.anf_distance_histogram` — HyperANF diffusion, the
  backend the paper actually uses for its large graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class DistanceHistogram:
    """Counts of vertex pairs by hop distance.

    Attributes
    ----------
    counts:
        ``counts[d]`` = number of (unordered) pairs at distance ``d``,
        for ``d ≥ 1``; index 0 is unused and kept at 0 so that indices
        equal distances.
    disconnected:
        Number of (unordered) pairs with no connecting path —
        ``S_PDD[∞]`` in the paper's notation.
    exact:
        Whether the histogram came from exhaustive BFS (vs sampling/ANF
        estimation).
    """

    counts: np.ndarray
    disconnected: float
    exact: bool = True

    @property
    def connected_pairs(self) -> float:
        """Total number of path-connected pairs."""
        return float(self.counts.sum())

    @property
    def total_pairs(self) -> float:
        """All pairs, connected or not."""
        return self.connected_pairs + self.disconnected

    def fractions(self) -> np.ndarray:
        """``counts`` normalised by all pairs (the Figure-2 y-axis)."""
        total = self.total_pairs
        if total == 0:
            return self.counts.astype(np.float64)
        return self.counts / total


def distance_histogram(
    graph: Graph,
    *,
    sources: np.ndarray | None = None,
    sample_size: int | None = None,
    seed=None,
) -> DistanceHistogram:
    """Distance histogram by (optionally sampled) all-sources BFS.

    Parameters
    ----------
    graph:
        Graph to measure.
    sources:
        Explicit BFS sources.  When given (or sampled via
        ``sample_size``), per-source pair counts are scaled by ``n/s`` to
        estimate the full histogram — the estimator stays unbiased
        because each unordered pair is counted from both endpoints with
        equal probability.
    sample_size:
        Draw this many sources uniformly without replacement.
    seed:
        RNG for source sampling.

    Returns
    -------
    DistanceHistogram
    """
    n = graph.num_vertices
    if n == 0:
        return DistanceHistogram(np.zeros(1), 0.0, exact=True)
    exact = sources is None and sample_size is None
    if sources is None:
        if sample_size is not None and sample_size < n:
            rng = as_rng(seed)
            sources = rng.choice(n, size=sample_size, replace=False)
        else:
            sources = np.arange(n, dtype=np.int64)
    sources = np.asarray(sources, dtype=np.int64)

    csr = graph.to_csr()
    max_dist = 0
    counts = np.zeros(max(n, 2), dtype=np.float64)  # ordered-pair counts
    disconnected = 0.0
    for s in sources:
        dist = bfs_distances(csr, int(s), n=n)
        finite = dist[dist > 0]
        if finite.size:
            row = np.bincount(finite)
            counts[: len(row)] += row
            max_dist = max(max_dist, len(row) - 1)
        disconnected += float((dist < 0).sum())

    scale = n / len(sources) if len(sources) else 1.0
    # ordered → unordered, then rescale for sampling
    pair_counts = counts[: max_dist + 1] * scale / 2.0
    return DistanceHistogram(
        counts=pair_counts,
        disconnected=disconnected * scale / 2.0,
        exact=exact,
    )


def average_distance(hist: DistanceHistogram) -> float:
    """``S_APD`` — mean distance over path-connected pairs."""
    total = hist.connected_pairs
    if total == 0:
        return 0.0
    d = np.arange(len(hist.counts), dtype=np.float64)
    return float((d * hist.counts).sum() / total)


def effective_diameter(hist: DistanceHistogram, *, quantile: float = 0.9) -> float:
    """``S_EDiam`` — interpolated 90th-percentile distance.

    The paper's variant "linearly interpolates between the 90-th
    percentile and the successive integer": find the smallest integer
    ``d`` whose cumulative fraction reaches the quantile and interpolate
    within the bin ``(d-1, d]``.
    """
    total = hist.connected_pairs
    if total == 0:
        return 0.0
    target = quantile * total
    cumulative = np.cumsum(hist.counts)
    d = int(np.searchsorted(cumulative, target))
    if d >= len(hist.counts):
        return float(len(hist.counts) - 1)
    below = cumulative[d - 1] if d > 0 else 0.0
    in_bin = hist.counts[d]
    if in_bin <= 0:
        return float(d)
    return (d - 1) + (target - below) / in_bin


def connectivity_length(hist: DistanceHistogram) -> float:
    """``S_CL`` — harmonic mean of pairwise distances over *all* pairs.

    Disconnected pairs contribute ``1/dist = 0`` (Marchiori–Latora), so
    the statistic is finite on disconnected graphs.
    """
    total = hist.total_pairs
    if total == 0:
        return 0.0
    d = np.arange(len(hist.counts), dtype=np.float64)
    with np.errstate(divide="ignore"):
        inv = np.where(d > 0, 1.0 / np.maximum(d, 1), 0.0)
    inv[0] = 0.0
    harmonic_sum = float((inv * hist.counts).sum())
    if harmonic_sum == 0:
        return float("inf")
    return total / harmonic_sum


def diameter(hist: DistanceHistogram) -> float:
    """``S_Diam`` (or its lower bound when the histogram is estimated).

    On an exact histogram this is the true diameter; on an ANF/sampled
    histogram it is the paper's ``S_DiamLB`` — the largest distance with
    nonzero estimated count.
    """
    nz = np.nonzero(hist.counts)[0]
    if len(nz) == 0:
        return 0.0
    return float(nz[-1])


def pairwise_distance_distribution(hist: DistanceHistogram) -> np.ndarray:
    """``S_PDD`` as pair *fractions* per distance (Figure 2's y-axis)."""
    return hist.fractions()
