"""Degree-based graph statistics (§6.2 of the paper).

Scalar statistics ``S_NE`` (edges), ``S_AD`` (average degree), ``S_MD``
(maximum degree), ``S_DV`` (degree variance, Snijders' heterogeneity
index), ``S_PL`` (power-law tail exponent estimate) and the vector
statistic ``S_DD`` (degree distribution).

For *linear* statistics the expectation over possible worlds has a
closed form (Equation 11): ``E[S_NE] = Σ_e p(e)`` and
``E[S_AD] = (2/n)·Σ_e p(e)``; both are provided for uncertain graphs so
the harness can cross-check sampling against exact values (footnote 5 of
the paper does the same).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph


def num_edges(graph: Graph) -> float:
    """``S_NE = ½·Σ_v d_v`` — the number of edges."""
    return float(graph.num_edges)


def average_degree(graph: Graph) -> float:
    """``S_AD = (1/n)·Σ_v d_v = 2m/n``."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    return 2.0 * graph.num_edges / n


def max_degree(graph: Graph) -> float:
    """``S_MD = max_v d_v``."""
    if graph.num_vertices == 0:
        return 0.0
    return float(graph.degrees().max())


def degree_variance(graph: Graph) -> float:
    """``S_DV = (1/n)·Σ_v (d_v − S_AD)²`` — Snijders' heterogeneity index."""
    if graph.num_vertices == 0:
        return 0.0
    degs = graph.degrees().astype(np.float64)
    return float(degs.var())


def degree_distribution(graph: Graph) -> np.ndarray:
    """``S_DD``: fraction of vertices per degree, ``Δ(d)``, d = 0..max."""
    n = graph.num_vertices
    if n == 0:
        return np.zeros(1, dtype=np.float64)
    counts = np.bincount(graph.degrees())
    return counts / n


def powerlaw_exponent(
    graph: Graph, *, d_min: int | None = None
) -> float:
    """``S_PL``: least-squares slope of ``log Δ(d)`` against ``log d``.

    The paper fits the power-law exponent "focusing on higher degrees
    where the power law fits better, ignoring smaller degrees" but does
    not publish the exact protocol.  This implementation fits on degrees
    ``d ≥ d_min`` with nonzero frequency, where ``d_min`` defaults to the
    (rounded) average degree — a common heavy-tail convention.  Absolute
    values therefore need not match the paper's; the reproduction
    compares original-vs-obfuscated values computed *consistently* with
    this estimator (see DESIGN.md §5).

    Returns 0.0 when fewer than two tail points exist (no slope defined).
    """
    if graph.num_vertices == 0:
        return 0.0
    return powerlaw_exponent_from_distribution(
        degree_distribution(graph),
        average_degree=average_degree(graph),
        d_min=d_min,
    )


def powerlaw_exponent_from_distribution(
    dist: np.ndarray, *, average_degree: float, d_min: int | None = None
) -> float:
    """The S_PL fit on a precomputed degree distribution.

    Shared by :func:`powerlaw_exponent` and the batched world engine
    (:mod:`repro.worlds.stats_batch`), which computes all worlds' degree
    distributions in one pass and must fit each exactly as the scalar
    path would — a single code path guarantees bit-equal slopes.
    """
    if d_min is None:
        d_min = max(2, int(round(average_degree)))
    ds = np.nonzero(dist)[0]
    ds = ds[ds >= d_min]
    if len(ds) < 2:
        return 0.0
    x = np.log(ds.astype(np.float64))
    y = np.log(dist[ds])
    slope = np.polyfit(x, y, 1)[0]
    return float(slope)


def expected_num_edges(uncertain: UncertainGraph) -> float:
    """Exact ``E[S_NE] = Σ_{e∈V2} p(e)`` (§6.2, linear statistic)."""
    return uncertain.expected_num_edges()


def expected_average_degree(uncertain: UncertainGraph) -> float:
    """Exact ``E[S_AD] = (2/n)·Σ_{e∈V2} p(e)`` (§6.2, linear statistic)."""
    n = uncertain.num_vertices
    if n == 0:
        return 0.0
    return 2.0 * uncertain.expected_num_edges() / n
