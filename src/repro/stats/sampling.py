"""Possible-world sampling estimators with Hoeffding guarantees (§6.1).

The expected value of a statistic over the exponential world space
(Equation 8) is approximated by the average over ``r`` sampled worlds
(Equation 9).  Lemma 2 gives the Hoeffding bound

    Pr(|E[S] − S̄| ≥ ε) ≤ 2·exp(−2ε²r / (b−a)²)

for a statistic bounded in ``[a, b]``, and Corollary 1 inverts it into a
sample-size rule.  Both are implemented here, together with
:class:`WorldStatisticsEstimator`, the engine behind the paper's
Tables 4–5 (sample means and SEMs of 10 statistics over 100 worlds).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.sampling import WorldSampler
from repro.utils.rng import as_rng

#: A scalar statistic of a certain graph.
GraphStatistic = Callable[[Graph], float]


def hoeffding_error_probability(
    epsilon: float, r: int, lower: float, upper: float
) -> float:
    """Lemma 2: upper bound on ``Pr(|E[S] − S̄| ≥ ε)`` with ``r`` worlds."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if r <= 0:
        raise ValueError(f"sample count must be > 0, got {r}")
    if upper <= lower:
        raise ValueError("need upper > lower statistic bounds")
    return min(1.0, 2.0 * math.exp(-2.0 * epsilon**2 * r / (upper - lower) ** 2))


def hoeffding_sample_size(
    epsilon: float, delta: float, lower: float, upper: float
) -> int:
    """Corollary 1: worlds needed for ``Pr(error ≥ ε) ≤ δ``.

    ``r ≥ ((b−a)/ε)² · ln(2/δ) / 2``.
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if upper <= lower:
        raise ValueError("need upper > lower statistic bounds")
    return int(math.ceil(((upper - lower) / epsilon) ** 2 * math.log(2.0 / delta) / 2.0))


@dataclass
class SampleSummary:
    """Per-statistic summary over sampled worlds (Tables 4–5 columns).

    Attributes
    ----------
    name:
        Statistic identifier.
    values:
        The per-world raw values.
    """

    name: str
    values: np.ndarray = field(repr=False)

    @property
    def num_worlds(self) -> int:
        """Sample size ``r``."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Sample mean ``S̄`` (Equation 9)."""
        return float(np.mean(self.values)) if len(self.values) else float("nan")

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1)."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def sem(self) -> float:
        """Standard error of the mean: ``std / √r``."""
        if len(self.values) < 2:
            return 0.0
        return self.std / math.sqrt(len(self.values))

    @property
    def relative_sem(self) -> float:
        """SEM normalised by the mean — the quantity Table 5 reports."""
        m = self.mean
        if m == 0:
            return float("inf") if self.sem > 0 else 0.0
        return abs(self.sem / m)

    def relative_error(self, reference: float) -> float:
        """|mean − reference| / |reference| — the Table 4 "rel.err" input."""
        if reference == 0:
            return float("inf") if self.mean != 0 else 0.0
        return abs(self.mean - reference) / abs(reference)


class WorldStatisticsEstimator:
    """Evaluate a family of statistics over sampled possible worlds.

    Parameters
    ----------
    uncertain:
        The published uncertain graph.
    statistics:
        Mapping from statistic name to a ``Graph → float`` callable.

    backend:
        ``"sequential"`` (default) evaluates one world at a time;
        ``"batched"`` delegates to
        :class:`repro.worlds.BatchedWorldStatisticsEstimator`, which
        draws the same worlds from the same RNG stream but evaluates the
        paper-family statistics through vectorised multi-world kernels
        (seed-equivalent: same worlds, same values to fp round-off).
    backend_options:
        Extra keyword arguments for the batched backend
        (``distance_backend``, ``distance_seed``, ``chunk_size``, ...);
        rejected for the sequential backend.

    Examples
    --------
    >>> from repro.uncertain import UncertainGraph
    >>> from repro.stats.degree import average_degree
    >>> ug = UncertainGraph.from_pairs(4, [(0, 1, 0.5), (2, 3, 1.0)])
    >>> est = WorldStatisticsEstimator(ug, {"S_AD": average_degree})
    >>> summaries = est.run(worlds=64, seed=0)
    >>> 0.5 < summaries["S_AD"].mean < 1.0   # E[S_AD] = 2*(1.5)/4 = 0.75
    True
    """

    def __init__(
        self,
        uncertain: UncertainGraph,
        statistics: Mapping[str, GraphStatistic],
        *,
        backend: str = "sequential",
        **backend_options,
    ):
        if backend not in ("sequential", "batched"):
            raise ValueError(
                f"unknown backend {backend!r}; use sequential or batched"
            )
        if backend == "sequential" and backend_options:
            raise ValueError(
                "backend options "
                f"{sorted(backend_options)} require backend='batched'"
            )
        self._backend = backend
        self._delegate = None
        if backend == "batched":
            # Imported lazily: repro.worlds builds on this module.
            from repro.worlds.estimator import BatchedWorldStatisticsEstimator

            self._delegate = BatchedWorldStatisticsEstimator(
                uncertain, statistics, **backend_options
            )
        self._sampler = WorldSampler(uncertain)
        self._statistics = dict(statistics)

    def run(
        self, *, worlds: int, seed=None, collect_worlds: bool = False
    ) -> dict[str, SampleSummary]:
        """Sample ``worlds`` possible worlds and evaluate every statistic.

        Parameters
        ----------
        worlds:
            Sample size ``r``.
        seed:
            RNG seed/stream.
        collect_worlds:
            When true, sampled :class:`Graph` objects are retained on
            ``self.last_worlds`` for reuse (e.g. vector statistics
            computed alongside the scalars).

        Returns
        -------
        dict[str, SampleSummary]
        """
        if worlds < 1:
            raise ValueError(f"need at least one world, got {worlds}")
        if self._delegate is not None:
            summaries = self._delegate.run(
                worlds=worlds, seed=seed, collect_worlds=collect_worlds
            )
            self.last_worlds = self._delegate.last_worlds
            return summaries
        rng = as_rng(seed)
        values: dict[str, list[float]] = {name: [] for name in self._statistics}
        self.last_worlds: list[Graph] = []
        for _ in range(worlds):
            world = self._sampler.sample(seed=rng)
            if collect_worlds:
                self.last_worlds.append(world)
            for name, func in self._statistics.items():
                values[name].append(float(func(world)))
        return {
            name: SampleSummary(name=name, values=np.asarray(vals))
            for name, vals in values.items()
        }


def estimate_statistic(
    uncertain: UncertainGraph,
    statistic: GraphStatistic,
    *,
    worlds: int,
    seed=None,
    name: str = "S",
) -> SampleSummary:
    """One-statistic convenience wrapper around the estimator."""
    estimator = WorldStatisticsEstimator(uncertain, {name: statistic})
    return estimator.run(worlds=worlds, seed=seed)[name]
