"""Named registry of the paper's ten scalar statistics (Tables 4–6 columns).

``paper_statistics()`` returns the exact column family of Table 4 —
S_NE, S_AD, S_MD, S_DV, S_PL, S_APD, S_DiamLB, S_EDiam, S_CL, S_CC —
as ``Graph → float`` callables, with the distance-based entries sharing
one histogram computation per graph via a tiny per-graph cache (five
distance statistics would otherwise re-run BFS/ANF five times per
sampled world).

The ``distance_backend`` choice mirrors the paper's §6.3 discussion:

* ``"exact"``    — all-sources BFS (small graphs, tests);
* ``"sampled"``  — BFS from a random subset of sources [6, 18];
* ``"anf"``      — HyperANF diffusion [3], the paper's choice for its
  large graphs (S_Diam then becomes the lower bound S_DiamLB, exactly as
  in the paper).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.graphs.graph import Graph
from repro.graphs.triangles import clustering_coefficient
from repro.stats.degree import (
    average_degree,
    degree_variance,
    max_degree,
    num_edges,
    powerlaw_exponent,
)
from repro.stats.distance import (
    DistanceHistogram,
    average_distance,
    connectivity_length,
    diameter,
    distance_histogram,
    effective_diameter,
)

#: Order of the scalar columns as printed in the paper's Table 4.
PAPER_STATISTIC_NAMES = (
    "S_NE",
    "S_AD",
    "S_MD",
    "S_DV",
    "S_PL",
    "S_APD",
    "S_DiamLB",
    "S_EDiam",
    "S_CL",
    "S_CC",
)


class StatisticFamily(dict):
    """A statistics mapping that remembers how it was configured.

    ``paper_statistics`` returns this instead of a plain dict so that
    alternative evaluation engines (the batched world estimator) can
    recognise the registry family, adopt the exact configuration its
    closures embed, and refuse silently-divergent overrides.  For any
    other mapping the engines must treat every entry as an opaque
    ``Graph → float`` callable.
    """

    def __init__(
        self,
        entries,
        *,
        distance_backend: str,
        sample_size: int | None,
        seed,
        powerlaw_d_min: int | None,
    ):
        super().__init__(entries)
        self.distance_backend = distance_backend
        self.sample_size = sample_size
        self.seed = seed
        self.powerlaw_d_min = powerlaw_d_min


class _HistogramCache:
    """Share one distance histogram among the distance statistics.

    Keyed on graph identity — each sampled world is a fresh object, so
    a single-slot cache is exactly right for the world-sampling loop.
    """

    def __init__(self, backend: str, sample_size: int | None, seed):
        self._backend = backend
        self._sample_size = sample_size
        self._seed = seed
        self._key: int | None = None
        self._hist: DistanceHistogram | None = None

    def get(self, graph: Graph) -> DistanceHistogram:
        """Histogram for ``graph``, computed once per graph object."""
        key = id(graph)
        if key != self._key or self._hist is None:
            self._hist = self._compute(graph)
            self._key = key
        return self._hist

    def _compute(self, graph: Graph) -> DistanceHistogram:
        if self._backend == "exact":
            return distance_histogram(graph)
        if self._backend == "sampled":
            size = self._sample_size or min(graph.num_vertices, 256)
            return distance_histogram(graph, sample_size=size, seed=self._seed)
        if self._backend == "anf":
            # imported lazily: repro.anf depends on repro.stats.distance,
            # so a module-level import here would close a package cycle
            from repro.anf.distance_stats import anf_distance_histogram

            return anf_distance_histogram(graph, seed=self._seed)
        raise ValueError(
            f"unknown distance backend {self._backend!r}; use exact/sampled/anf"
        )


def paper_statistics(
    *,
    distance_backend: str = "anf",
    sample_size: int | None = None,
    seed=0,
    powerlaw_d_min: int | None = None,
) -> dict[str, Callable[[Graph], float]]:
    """Build the Table-4 statistic family.

    Parameters
    ----------
    distance_backend:
        ``"exact"``, ``"sampled"`` or ``"anf"`` (see module docstring).
    sample_size:
        Source count for the ``"sampled"`` backend.
    seed:
        Seed for sampled/ANF backends (kept fixed across worlds so that
        world-to-world variation reflects the uncertain graph, not the
        estimator).
    powerlaw_d_min:
        Tail cut for the S_PL fit (default: per-graph average degree).

    Returns
    -------
    StatisticFamily
        Statistic name → callable, in Table-4 column order, tagged with
        the configuration so batched engines can reproduce it exactly.
    """
    cache = _HistogramCache(distance_backend, sample_size, seed)

    return StatisticFamily(
        {
            "S_NE": num_edges,
            "S_AD": average_degree,
            "S_MD": max_degree,
            "S_DV": degree_variance,
            "S_PL": lambda g: powerlaw_exponent(g, d_min=powerlaw_d_min),
            "S_APD": lambda g: average_distance(cache.get(g)),
            "S_DiamLB": lambda g: diameter(cache.get(g)),
            "S_EDiam": lambda g: effective_diameter(cache.get(g)),
            "S_CL": lambda g: connectivity_length(cache.get(g)),
            "S_CC": clustering_coefficient,
        },
        distance_backend=distance_backend,
        sample_size=sample_size,
        seed=seed,
        powerlaw_d_min=powerlaw_d_min,
    )


def degree_only_statistics() -> dict[str, Callable[[Graph], float]]:
    """The cheap degree-based subset (no BFS), for fast sweeps and tests."""
    return {
        "S_NE": num_edges,
        "S_AD": average_degree,
        "S_MD": max_degree,
        "S_DV": degree_variance,
        "S_PL": powerlaw_exponent,
    }
