"""A-posteriori-belief obfuscation measure (Bonchi et al., ICDE'11).

Before the entropy measure of Definition 2, the literature (Hay et
al. [12], Ying et al. [32]) quantified anonymity as the inverse of the
adversary's *maximum* posterior belief:

    level_belief(ω) = ( max_v Y_ω(v) )⁻¹

Bonchi et al. [4] showed the entropy measure dominates it:
``H(Y) ≥ H_∞(Y) = log2 level_belief`` (Shannon entropy is at least
min-entropy), i.e. the entropy-based obfuscation level
``2^{H(Y_ω)}`` is always ≥ the belief-based level.  This module
implements the belief measure on top of the same posterior machinery so
the two can be compared empirically (the §2 discussion the paper builds
on), and the dominance inequality is property-tested.
"""

from __future__ import annotations

import numpy as np

from repro.core.obfuscation_check import DegreePosterior


def belief_level_from_column(column: np.ndarray) -> float:
    """``(max_v Y_ω(v))⁻¹`` for an unnormalised posterior column.

    Returns 0.0 for an all-zero column (unattainable degree), matching
    the entropy checker's convention.
    """
    column = np.asarray(column, dtype=np.float64)
    total = column.sum()
    if total <= 0:
        return 0.0
    return float(total / column.max())


def belief_obfuscation_levels(
    posterior: DegreePosterior, degrees: np.ndarray
) -> np.ndarray:
    """Per-vertex belief-based level ``(max_u Y_{P(v)}(u))⁻¹``.

    Directly comparable with
    :meth:`repro.core.DegreePosterior.obfuscation_levels`, which returns
    the entropy-based ``2^{H(Y_{P(v)})}``; by min-entropy ≤ Shannon
    entropy the belief level never exceeds the entropy level.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    by_degree = {
        int(w): belief_level_from_column(posterior.x_column(int(w)))
        for w in np.unique(degrees)
    }
    return np.array([by_degree[int(w)] for w in degrees], dtype=np.float64)


def belief_k_obfuscated(
    posterior: DegreePosterior, degrees: np.ndarray, k: float
) -> np.ndarray:
    """Boolean mask under the belief criterion ``max_v Y_ω(v) ≤ 1/k``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return belief_obfuscation_levels(posterior, degrees) >= k - 1e-9
