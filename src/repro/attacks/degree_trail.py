"""Degree-trail attack on sequential releases (Medforth & Wang, ICDM'11).

The paper's §8 flags this as an open question for probabilistic
releases: when the same network is published repeatedly, an adversary
who tracks the *degree evolution* of a target across time can match it
against the trails observed in the published sequence, re-identifying
vertices whose trail is unique even though each individual release is
obfuscated.

This module implements the attack and the risk measurement:

* a *trail* is the vector of a vertex's degrees across ``T`` releases;
* a target is re-identified if exactly one published vertex's trail is
  compatible with the target's known trail (within an absolute
  tolerance, since uncertain releases yield non-integer expected
  degrees).

For uncertain releases the adversary can use expected degrees
(:func:`expected_degree_trails`) or any sampled world
(:func:`degree_trails`), letting experiments quantify how much the
uncertainty protects against trail linkage.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.uncertain.graph import UncertainGraph


def degree_trails(releases: Sequence[Graph]) -> np.ndarray:
    """Stack per-release degree sequences into an ``(n, T)`` trail matrix."""
    if not releases:
        raise ValueError("need at least one release")
    n = releases[0].num_vertices
    for g in releases:
        if g.num_vertices != n:
            raise ValueError("all releases must share the vertex set")
    return np.stack([g.degrees() for g in releases], axis=1).astype(np.float64)


def expected_degree_trails(releases: Sequence[UncertainGraph]) -> np.ndarray:
    """Trail matrix of *expected* degrees across uncertain releases."""
    if not releases:
        raise ValueError("need at least one release")
    n = releases[0].num_vertices
    for g in releases:
        if g.num_vertices != n:
            raise ValueError("all releases must share the vertex set")
    return np.stack([g.expected_degrees() for g in releases], axis=1)


def trail_matches(
    target_trail: np.ndarray, published_trails: np.ndarray, *, tol: float = 0.5
) -> np.ndarray:
    """Indices of published vertices whose trail matches the target's.

    A published trail matches when every coordinate is within ``tol`` of
    the target's (Chebyshev ball) — with ``tol = 0.5`` integer trails
    must match exactly, while expected-degree trails tolerate rounding.
    """
    target_trail = np.asarray(target_trail, dtype=np.float64)
    diffs = np.abs(published_trails - target_trail[None, :])
    return np.flatnonzero((diffs <= tol).all(axis=1))


def reidentification_rate(
    original_trails: np.ndarray,
    published_trails: np.ndarray,
    *,
    tol: float = 0.5,
) -> float:
    """Fraction of vertices uniquely — and correctly — re-identified.

    A vertex ``v`` counts as re-identified when the *only* published
    trail compatible with its original trail is the published trail of
    ``v`` itself.  (A unique-but-wrong match is a failed attack, not a
    privacy breach, and does not count.)
    """
    original_trails = np.asarray(original_trails, dtype=np.float64)
    published_trails = np.asarray(published_trails, dtype=np.float64)
    if original_trails.shape != published_trails.shape:
        raise ValueError("trail matrices must have matching shape")
    n = original_trails.shape[0]
    if n == 0:
        return 0.0
    hits = 0
    for v in range(n):
        matches = trail_matches(original_trails[v], published_trails, tol=tol)
        if len(matches) == 1 and matches[0] == v:
            hits += 1
    return hits / n


def trail_uniqueness_rate(trails: np.ndarray, *, tol: float = 0.5) -> float:
    """Fraction of vertices whose trail is unique within the collection.

    Upper-bounds the attack's success: only unique trails are linkable.
    """
    trails = np.asarray(trails, dtype=np.float64)
    n = trails.shape[0]
    if n == 0:
        return 0.0
    unique = 0
    for v in range(n):
        if len(trail_matches(trails[v], trails, tol=tol)) == 1:
            unique += 1
    return unique / n
