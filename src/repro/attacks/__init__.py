"""Attack models and alternative privacy measures (extensions of §2/§8)."""

from repro.attacks.belief import (
    belief_k_obfuscated,
    belief_level_from_column,
    belief_obfuscation_levels,
)
from repro.attacks.degree_trail import (
    degree_trails,
    expected_degree_trails,
    reidentification_rate,
    trail_matches,
    trail_uniqueness_rate,
)

__all__ = [
    "belief_level_from_column",
    "belief_obfuscation_levels",
    "belief_k_obfuscated",
    "degree_trails",
    "expected_degree_trails",
    "trail_matches",
    "reidentification_rate",
    "trail_uniqueness_rate",
]
