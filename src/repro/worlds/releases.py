"""Batched Table-6 baseline releases as possible worlds.

A randomized release scheme *is* a distribution over possible worlds
(Nguyen et al., "Anonymizing Social Graphs via Uncertainty Semantics"):
random sparsification publishes the possible world of an uncertain
graph whose candidate pairs are the original edges at probability
``1 − p``, and random perturbation additionally gives every original
non-edge the tiny balanced addition probability.  This module exploits
that view to draw ``W`` baseline releases through the same batch
machinery the obfuscation side already uses — a :class:`WorldBatch`
whose kernels (:mod:`repro.worlds.stats_batch`,
:mod:`repro.worlds.anf_batch`) then evaluate all ten Table-6 statistics
without materialising a single per-release Python loop.

Determinism contract (pinned by ``tests/worlds/test_releases.py``):
:func:`sample_releases` consumes the RNG stream *exactly* as ``W``
sequential calls of :func:`repro.baselines.randomization.random_sparsification`
/ :func:`~repro.baselines.randomization.random_perturbation` with a
shared generator would —

* sparsification draws one ``m``-uniform keep vector per release, and a
  single ``(W, m)`` draw fills rows in C order, so the batch *is* the
  ``W`` sequential draws;
* perturbation interleaves keep draws with the geometric-skip addition
  passes, so the batch replays the per-release order, release by
  release, through the very same
  :func:`~repro.baselines.randomization.sample_addition_indices` /
  :func:`~repro.baselines.randomization.sample_added_pairs` primitives
  the sequential path calls (every pass internally vectorised).

Equal seeds therefore give identical releases edge-for-edge in both
paths, which is what lets ``experiments/comparison.py`` keep the
sequential functions as pinned ground truth while running Table 6 on
the batched engine.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.randomization import (
    _keep_mask,
    sample_added_pairs,
)
from repro.exec.plan import RELEASE_CHUNK_DEFAULT
from repro.graphs.graph import Graph
from repro.obs.metrics import REGISTRY as _OBS
from repro.utils.rng import as_rng
from repro.utils.validation import check_probability
from repro.worlds.batch import WorldBatch, draw_packed_keep_bits

#: The two whole-edge randomization schemes of §7.3.
RELEASE_SCHEMES = ("sparsification", "perturbation")

# Streaming telemetry (repro.obs): chunk shape of the release stream —
# the knob bounding the cross-release union working set.
_RELEASE_CHUNKS = _OBS.counter("releases.stream.chunks")
_RELEASE_WORLDS = _OBS.counter("releases.stream.worlds")
_RELEASE_CHUNK_HIST = _OBS.histogram("releases.stream.chunk_size")


def sample_releases(
    graph: Graph, scheme: str, p: float, worlds: int, *, seed=None
) -> WorldBatch:
    """Draw ``worlds`` randomized releases of ``graph`` as one batch.

    Parameters
    ----------
    graph:
        The original graph G.
    scheme:
        ``"sparsification"`` or ``"perturbation"``.
    p:
        The scheme's removal probability (perturbation's addition rate
        is derived from ``graph`` as in the paper).
    worlds:
        Number of releases ``W``.
    seed:
        Anything :func:`repro.utils.rng.as_rng` accepts.  Passing a
        ``Generator`` consumes the exact stream positions ``W``
        sequential single-release calls would, so batched and
        sequential draws from one generator interleave exactly.

    Returns
    -------
    WorldBatch
        ``batch.world_graph(w)`` equals the ``w``-th sequential release
        from the same stream.  For perturbation the candidate columns
        are the original edges followed by the union of all pairs added
        in any release (sorted by pair code), each release keeping only
        its own additions.
    """
    check_probability(p, "p")
    if worlds < 0:
        raise ValueError(f"number of releases must be non-negative, got {worlds}")
    if scheme not in RELEASE_SCHEMES:
        raise ValueError(
            f"unknown scheme {scheme!r}; use sparsification/perturbation"
        )
    rng = as_rng(seed)
    edges = graph.edge_array()
    if scheme == "sparsification":
        return _sparsification_batch(rng, graph.num_vertices, edges, p, worlds)
    return _perturbation_batch(rng, graph, edges, p, worlds)


def _sparsification_batch(
    rng, n: int, edges: np.ndarray, p: float, worlds: int
) -> WorldBatch:
    """One ``(W, m)`` Bernoulli keep pass over the original edges."""
    m = len(edges)
    if m == 0:
        # the sequential sampler draws nothing for an edgeless graph
        return WorldBatch.from_keep_matrix(
            n, edges[:, 0], edges[:, 1], np.zeros((worlds, 0), dtype=bool)
        )
    packed = draw_packed_keep_bits(
        rng, worlds, m, lambda uniforms: uniforms >= p
    )
    return WorldBatch(n, edges[:, 0].copy(), edges[:, 1].copy(), packed, m)


def _merge_sorted_unique(union: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Merge the sorted-unique ``codes`` into the sorted-unique ``union``.

    One ``searchsorted`` + scatter per release instead of the former
    sort of the full concatenated code list: the union index grows
    append-style, cost ``O(|union| + |codes| log |union|)`` per merge,
    and already-present codes are dropped without touching the rest.
    """
    if len(union) == 0:
        return codes
    if len(codes) == 0:
        return union
    pos = np.searchsorted(union, codes)
    pos_safe = np.minimum(pos, len(union) - 1)
    new = codes[union[pos_safe] != codes]
    if len(new) == 0:
        return union
    out = np.empty(len(union) + len(new), dtype=np.int64)
    ins = np.searchsorted(union, new) + np.arange(len(new), dtype=np.int64)
    mask = np.ones(len(out), dtype=bool)
    out[ins] = new
    mask[ins] = False
    out[mask] = union
    return out


def _perturbation_draws(
    rng, graph: Graph, p: float, worlds: int
) -> tuple[np.ndarray, list[np.ndarray], np.ndarray]:
    """The per-release RNG passes: keep rows, addition codes, union index.

    Consumes the stream exactly like ``worlds`` sequential perturbation
    releases (keep draw then addition pass, release by release).  The
    union of added pair codes is maintained incrementally — each
    release's codes arrive strictly increasing from the geometric-skip
    sampler and are merged by :func:`_merge_sorted_unique`, so no full
    re-sort of the concatenated additions ever happens.
    """
    m = graph.num_edges
    n = graph.num_vertices
    edge_codes = graph.edge_codes()
    keep_rows = np.zeros((worlds, m), dtype=bool)
    added_codes: list[np.ndarray] = []
    union = np.empty(0, dtype=np.int64)
    for w in range(worlds):
        if m:
            keep_rows[w] = _keep_mask(rng, m, p)
        added = sample_added_pairs(graph, p, rng, edge_codes=edge_codes)
        codes = added[:, 0] * np.int64(n) + added[:, 1]
        added_codes.append(codes)
        union = _merge_sorted_unique(union, codes)
    return keep_rows, added_codes, union


def _assemble_perturbation(
    n: int,
    edges: np.ndarray,
    keep_rows: np.ndarray,
    added_codes: list[np.ndarray],
    union: np.ndarray,
) -> WorldBatch:
    """Shared column space + per-release keep rows → one batch."""
    m = len(edges)
    keep = np.zeros((len(added_codes), m + len(union)), dtype=bool)
    keep[:, :m] = keep_rows
    for w, codes in enumerate(added_codes):
        if len(codes):
            keep[w, m + np.searchsorted(union, codes)] = True
    us = np.concatenate([edges[:, 0], union // n])
    vs = np.concatenate([edges[:, 1], union % n])
    return WorldBatch.from_keep_matrix(n, us, vs, keep)


def _perturbation_batch(
    rng, graph: Graph, edges: np.ndarray, p: float, worlds: int
) -> WorldBatch:
    """Per-release keep + geometric-skip addition passes, union columns.

    The candidate-pair list is the original edge list extended by every
    pair added in *any* release; a release's keep row marks its kept
    original edges and its own additions.  All releases then share one
    column space, which is exactly the shape the batched kernels need.
    """
    keep_rows, added_codes, union = _perturbation_draws(rng, graph, p, worlds)
    return _assemble_perturbation(graph.num_vertices, edges, keep_rows, added_codes, union)


def stream_releases(
    graph: Graph,
    scheme: str,
    p: float,
    worlds: int,
    *,
    seed=None,
    chunk_size: int = RELEASE_CHUNK_DEFAULT,
):
    """Yield the releases of :func:`sample_releases` as bounded chunks.

    A generator of :class:`WorldBatch` objects of at most ``chunk_size``
    releases each, drawn from the *same* RNG stream positions as one
    :func:`sample_releases` call (per-release draws happen in the same
    order, so chunking never changes which releases are produced).

    The memory win is structural for perturbation: each chunk's
    candidate columns cover only the pairs added *within that chunk*,
    so the full cross-release union edge list — which at high ``p``
    dwarfs the original edge set — is never materialised.  Every batch
    kernel reads only kept incidences, so per-chunk evaluation produces
    exactly the values the monolithic batch would (pinned by
    ``tests/worlds/test_releases.py``).

    Parameters
    ----------
    graph, scheme, p, worlds, seed:
        As for :func:`sample_releases`.
    chunk_size:
        Maximum releases per yielded batch (the working-set bound).
    """
    check_probability(p, "p")
    if worlds < 0:
        raise ValueError(f"number of releases must be non-negative, got {worlds}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if scheme not in RELEASE_SCHEMES:
        raise ValueError(
            f"unknown scheme {scheme!r}; use sparsification/perturbation"
        )
    rng = as_rng(seed)
    edges = graph.edge_array()
    for lo in range(0, worlds, chunk_size):
        count = min(chunk_size, worlds - lo)
        _RELEASE_CHUNKS.add(1)
        _RELEASE_WORLDS.add(count)
        _RELEASE_CHUNK_HIST.observe(count)
        if scheme == "sparsification":
            yield _sparsification_batch(
                rng, graph.num_vertices, edges, p, count
            )
        else:
            yield _perturbation_batch(rng, graph, edges, p, count)
