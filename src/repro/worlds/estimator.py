"""Chunked, streaming Table-4/5/6 estimation over batched possible worlds.

Two layers live here:

* :class:`BatchStatisticsEngine` — the batch-to-values core: given any
  :class:`~repro.worlds.batch.WorldBatch` (sampled from an uncertain
  graph *or* built from randomized baseline releases by
  :mod:`repro.worlds.releases`), produce per-world values of a statistic
  family through the vectorised kernels of
  :mod:`repro.worlds.stats_batch` and :mod:`repro.worlds.anf_batch`.
* :class:`BatchedWorldStatisticsEstimator` — the drop-in backend behind
  ``WorldStatisticsEstimator(..., backend="batched")``: same ``run``
  signature, same :class:`~repro.stats.sampling.SampleSummary` outputs,
  same RNG stream — but worlds are drawn and evaluated a chunk at a time
  through the engine, so memory stays bounded by the chunk size while
  the arithmetic stays identical to the sequential world-by-world loop
  (equivalence pinned at ≤1e-9 by tests).

Dispatch: when the statistics mapping is the registry's
:class:`~repro.stats.registry.StatisticFamily` (or ``None``, which
builds one), the ten paper statistics (S_NE … S_CC) are produced by
the batched kernels under the *family's own configuration* —
explicitly passed options must agree or construction fails, so batched
and sequential can never silently diverge.  Any other mapping (and any
non-paper name inside a family) is treated as opaque ``Graph → float``
callables evaluated on lazily materialised worlds (bulk CSR
construction, no per-edge Python).  Distance statistics honour the
registry's three backends — ``"anf"`` runs the stacked multi-world
diffusion, ``"exact"``/``"sampled"`` share one BFS histogram per
materialised world, exactly like the sequential ``_HistogramCache``.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from repro.exec.plan import (
    SAMPLE_CHUNK_DEFAULT,
    ChunkPlan,
    world_eval_chunk_size,
)
from repro.graphs.graph import Graph
from repro.obs.metrics import REGISTRY as _OBS
from repro.obs.trace import span
from repro.stats.distance import (
    average_distance,
    connectivity_length,
    diameter,
    distance_histogram,
    effective_diameter,
)
from repro.stats.registry import StatisticFamily, paper_statistics
from repro.stats.sampling import SampleSummary
from repro.uncertain.graph import UncertainGraph
from repro.utils.rng import as_rng
from repro.worlds.anf_batch import (
    DISTANCE_STATISTIC_NAMES,
    anf_distance_statistics_batch,
)
from repro.worlds.batch import WorldBatch
from repro.worlds.stats_batch import (
    clustering_coefficients_batch,
    degree_matrix,
    degree_statistics_batch,
    triangle_counts_batch,
)

#: Names the batched kernels compute natively (degree family + S_CC).
DEGREE_STATISTIC_NAMES = ("S_NE", "S_AD", "S_MD", "S_DV", "S_PL")

#: Every statistic with a dedicated batched kernel.
BATCHED_STATISTIC_NAMES = frozenset(
    DEGREE_STATISTIC_NAMES + DISTANCE_STATISTIC_NAMES + ("S_CC",)
)

_UNSET = object()

# Chunking telemetry (repro.obs): how the engine actually sliced its
# work — auto chunk sizes chosen, worlds evaluated per slice, streamed
# release batches consumed.
_EVAL_CHUNKS = _OBS.counter("worlds.eval.chunks")
_EVAL_WORLDS = _OBS.counter("worlds.eval.worlds")
_EVAL_CHUNK_HIST = _OBS.histogram("worlds.eval.chunk_size")
_STREAM_BATCHES = _OBS.counter("worlds.eval.stream_batches")


class BatchStatisticsEngine:
    """Kernel dispatch + per-world evaluation for any :class:`WorldBatch`.

    Parameters
    ----------
    statistics:
        ``None`` (build the full Table-4 family from the options below),
        a :class:`~repro.stats.registry.StatisticFamily` (paper-family
        names run on the batched kernels with the family's exact
        configuration), or any other mapping of name → ``Graph → float``
        callable (every entry evaluated per materialised world — no
        kernel substitution, so custom callables are always honoured).
    distance_backend, sample_size, distance_seed:
        Distance-histogram backend configuration, mirroring
        :func:`repro.stats.registry.paper_statistics` (``seed`` there).
        When a ``StatisticFamily`` is supplied these default to *its*
        configuration, and explicitly passed values must agree with it
        (a mismatch would silently change what the statistics mean).
    powerlaw_d_min:
        Tail cut for the S_PL fit (same agreement rule).
    anf_b:
        HyperLogLog register bits for the ``"anf"`` backend; the
        registry family is pinned to the HyperANF default of 6.
    """

    def __init__(
        self,
        statistics: Mapping[str, Callable[[Graph], float]] | None = None,
        *,
        distance_backend=_UNSET,
        sample_size=_UNSET,
        distance_seed=_UNSET,
        anf_b=_UNSET,
        powerlaw_d_min=_UNSET,
    ):
        family = statistics if isinstance(statistics, StatisticFamily) else None

        def resolve(name: str, explicit, family_value, default):
            if explicit is _UNSET:
                return family_value if family is not None else default
            if family is not None and explicit != family_value:
                raise ValueError(
                    f"{name}={explicit!r} conflicts with the supplied "
                    f"statistics family ({name}={family_value!r}); the "
                    "batched kernels would silently diverge from the "
                    "family's callables"
                )
            return explicit

        if family is not None:
            self._backend = resolve(
                "distance_backend", distance_backend, family.distance_backend, None
            )
            self._sample_size = resolve(
                "sample_size", sample_size, family.sample_size, None
            )
            self._distance_seed = resolve(
                "distance_seed", distance_seed, family.seed, None
            )
            self._powerlaw_d_min = resolve(
                "powerlaw_d_min", powerlaw_d_min, family.powerlaw_d_min, None
            )
            self._anf_b = resolve("anf_b", anf_b, 6, 6)
        else:
            self._backend = resolve("distance_backend", distance_backend, None, "anf")
            self._sample_size = resolve("sample_size", sample_size, None, None)
            self._distance_seed = resolve("distance_seed", distance_seed, None, 0)
            self._powerlaw_d_min = resolve(
                "powerlaw_d_min", powerlaw_d_min, None, None
            )
            self._anf_b = resolve("anf_b", anf_b, None, 6)
        if self._backend not in ("exact", "sampled", "anf"):
            raise ValueError(
                f"unknown distance backend {self._backend!r}; "
                "use exact/sampled/anf"
            )
        if statistics is None:
            statistics = paper_statistics(
                distance_backend=self._backend,
                sample_size=self._sample_size,
                seed=self._distance_seed,
                powerlaw_d_min=self._powerlaw_d_min,
            )
            family = statistics
        # Plain mappings get no kernel substitution: whatever callables
        # the caller bound — even under paper-family names — run as-is.
        self._use_kernels = family is not None
        self._statistics = dict(statistics)

    @property
    def statistics(self) -> dict[str, Callable[[Graph], float]]:
        """The resolved name → callable mapping (kernel names included)."""
        return self._statistics

    def _runs_anf_kernel(self, names) -> bool:
        return (
            self._use_kernels
            and self._backend == "anf"
            and any(name in DISTANCE_STATISTIC_NAMES for name in names)
        )

    def spec(self) -> tuple:
        """Picklable resolved configuration (worker-side reconstruction).

        Valid whenever the engine runs the registry family
        (``statistics=None`` or a :class:`StatisticFamily`): a worker
        rebuilding via :meth:`from_spec` gets callables and kernels
        computing exactly what this engine's do.
        """
        return (
            self._backend,
            self._sample_size,
            self._distance_seed,
            self._anf_b,
            self._powerlaw_d_min,
        )

    @classmethod
    def from_spec(cls, spec: tuple) -> "BatchStatisticsEngine":
        backend, sample_size, distance_seed, anf_b, powerlaw_d_min = spec
        return cls(
            None,
            distance_backend=backend,
            sample_size=sample_size,
            distance_seed=distance_seed,
            anf_b=anf_b,
            powerlaw_d_min=powerlaw_d_min,
        )

    def _shardable(self, names) -> bool:
        """Can a worker reproduce this evaluation from :meth:`spec`?

        Requires the kernel path (a registry family) and only
        kernel-served names — opaque ``Graph → float`` callables are
        not reconstructible from a config tuple, so batches carrying
        them evaluate in the parent instead (correct, just serial).
        """
        return (
            self._use_kernels
            and not isinstance(self._distance_seed, np.random.Generator)
            and all(name in BATCHED_STATISTIC_NAMES for name in names)
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        batch: WorldBatch,
        names: list[str] | None = None,
        *,
        collect_worlds: bool = False,
        chunk_size: int | None = None,
    ) -> tuple[dict[str, np.ndarray], list[Graph]]:
        """Per-world values of every requested statistic for one batch.

        Returns ``(values, graphs)`` where ``values[name]`` is a ``(W,)``
        float64 vector and ``graphs`` holds the materialised worlds —
        non-empty only when ``collect_worlds`` is set or a non-kernel
        statistic forced materialisation anyway.

        Large batches are evaluated in world slices (worlds never
        interact, so slicing is value-preserving).  The automatic slice
        size is derived from the statistics actually requested: when a
        stacked ANF diffusion will run (``"anf"`` backend and at least
        one distance statistic on the kernel path), slices are sized so
        the ``(W·n, 2^b)`` register stack stays cache-resident — on big
        graphs one huge stacked diffusion is memory-bandwidth-bound and
        measurably slower than a handful of L2-sized ones.  Otherwise
        (degree/triangle kernels only, or the exact/sampled BFS
        backends) the register stack never exists, so the bound comes
        from the transient unpacked keep matrix instead — large ``n``
        no longer forces needless tiny slices.  ``chunk_size``
        overrides the automatic bound; results are identical for every
        chunking.
        """
        if names is None:
            names = list(self._statistics)
        W = batch.num_worlds
        if chunk_size is None:
            # The consolidated auto rule (repro.exec.plan): ~2 MB ANF
            # register stack when a stacked diffusion will run, ~32 MB
            # unpacked keep matrix otherwise, always >= 1.
            chunk_size = world_eval_chunk_size(
                batch.num_vertices,
                batch.num_candidate_pairs,
                anf=self._runs_anf_kernel(names),
                anf_b=self._anf_b,
            )
        _EVAL_WORLDS.add(W)
        if W > chunk_size:
            with span("worlds.evaluate", worlds=W, chunk_size=chunk_size):
                values = {name: np.empty(W, dtype=np.float64) for name in names}
                graphs: list[Graph] = []
                for lo in range(0, W, chunk_size):
                    sub = batch.slice(lo, min(lo + chunk_size, W))
                    _EVAL_CHUNKS.add(1)
                    _EVAL_CHUNK_HIST.observe(sub.num_worlds)
                    out, sub_graphs = self._evaluate_one(
                        sub, names, collect_worlds=collect_worlds
                    )
                    for name in names:
                        values[name][lo : lo + sub.num_worlds] = out[name]
                    graphs.extend(sub_graphs)
                return values, graphs
        _EVAL_CHUNKS.add(1)
        _EVAL_CHUNK_HIST.observe(W)
        with span("worlds.evaluate", worlds=W, chunk_size=chunk_size):
            return self._evaluate_one(batch, names, collect_worlds=collect_worlds)

    def evaluate_stream(
        self,
        batches,
        names: list[str] | None = None,
        *,
        chunk_size: int | None = None,
        executor=None,
    ) -> dict[str, np.ndarray]:
        """Per-world values over an *iterable* of batches, concatenated.

        The memory-bounded companion of :meth:`evaluate`: each batch is
        evaluated (and its union edge structure materialised) only while
        it is the current element, so feeding the generator from
        :func:`repro.worlds.releases.stream_releases` runs high-``p``
        perturbation baselines without ever holding the full
        cross-release union edge list.  Worlds never interact, so the
        concatenated values equal one monolithic :meth:`evaluate` over
        all worlds (pinned by ``tests/worlds/test_releases.py``).

        Parameters
        ----------
        batches:
            Iterable of :class:`WorldBatch` (e.g. a ``stream_releases``
            generator).  Consumed once.
        names, chunk_size:
            As for :meth:`evaluate`.
        executor:
            Optional :class:`~repro.exec.executor.ChunkExecutor`.  With
            a process backend, batches are *drawn* in the parent (so
            the RNG stream is consumed exactly as the serial path
            consumes it) and *evaluated* in workers, a bounded wave at
            a time — concatenated values stay bit-identical to the
            serial loop because worlds never interact and evaluation is
            chunking-invariant (both pinned by tests).
        """
        if names is None:
            names = list(self._statistics)
        parallel = (
            executor is not None
            and getattr(executor, "backend", "serial") == "process"
            and self._shardable(names)
        )
        parts: dict[str, list[np.ndarray]] = {name: [] for name in names}
        if parallel:
            spec = self.spec()
            wave_size = max(1, 2 * executor.workers)
            wave: list = []

            def flush():
                for values in executor.map(_eval_batch_task, wave):
                    for name in names:
                        parts[name].append(values[name])
                wave.clear()

            for batch in batches:
                _STREAM_BATCHES.add(1)
                wave.append(
                    (
                        spec,
                        list(names),
                        batch.packed_bits,
                        batch._us,
                        batch._vs,
                        batch.num_vertices,
                        batch.num_candidate_pairs,
                        chunk_size,
                    )
                )
                if len(wave) >= wave_size:
                    flush()
            flush()
        else:
            for batch in batches:
                _STREAM_BATCHES.add(1)
                chunk, _ = self.evaluate(batch, names, chunk_size=chunk_size)
                for name in names:
                    parts[name].append(chunk[name])
        return {
            name: (
                np.concatenate(parts[name])
                if parts[name]
                else np.empty(0, dtype=np.float64)
            )
            for name in names
        }

    def _evaluate_one(
        self,
        batch: WorldBatch,
        names: list[str],
        *,
        collect_worlds: bool,
    ) -> tuple[dict[str, np.ndarray], list[Graph]]:
        """One un-sliced evaluation pass (see :meth:`evaluate`)."""
        out: dict[str, np.ndarray] = {}
        kernel_names = BATCHED_STATISTIC_NAMES if self._use_kernels else frozenset()
        degree_names = [n for n in names if n in kernel_names and n in DEGREE_STATISTIC_NAMES]
        distance_names = [n for n in names if n in kernel_names and n in DISTANCE_STATISTIC_NAMES]
        fallback_names = [n for n in names if n not in kernel_names]
        want_cc = "S_CC" in names and self._use_kernels

        degrees = (
            degree_matrix(batch) if degree_names or want_cc else None
        )
        if degree_names:
            out.update(
                degree_statistics_batch(
                    batch, degrees=degrees, powerlaw_d_min=self._powerlaw_d_min
                )
            )
        if want_cc:
            out["S_CC"] = clustering_coefficients_batch(
                batch,
                degrees=degrees,
                triangles=triangle_counts_batch(batch, degrees=degrees),
            )
        if distance_names:
            if self._backend == "anf":
                out.update(
                    anf_distance_statistics_batch(
                        batch, b=self._anf_b, seed=self._distance_seed
                    )
                )
            else:
                out.update(self._bfs_distance_statistics(batch))

        graphs: list[Graph] = []
        if fallback_names or collect_worlds:
            graphs = list(batch.graphs())
        for name in fallback_names:
            func = self._statistics[name]
            out[name] = np.array([float(func(g)) for g in graphs])
        return {name: out[name] for name in names}, graphs

    def _bfs_distance_statistics(self, batch: WorldBatch) -> dict[str, np.ndarray]:
        """The exact/sampled backends: one shared histogram per world.

        Mirrors the sequential registry's ``_HistogramCache`` — a fresh
        BFS histogram per world, reused by all four distance statistics,
        with the sampled backend re-seeding identically per world so the
        source subset (the estimator noise) is held fixed across worlds.
        """
        W = batch.num_worlds
        out = {
            name: np.empty(W, dtype=np.float64) for name in DISTANCE_STATISTIC_NAMES
        }
        for w in range(W):
            graph = batch.world_graph(w)
            if self._backend == "exact":
                hist = distance_histogram(graph)
            else:
                size = self._sample_size or min(graph.num_vertices, 256)
                hist = distance_histogram(
                    graph, sample_size=size, seed=self._distance_seed
                )
            out["S_APD"][w] = average_distance(hist)
            out["S_DiamLB"][w] = diameter(hist)
            out["S_EDiam"][w] = effective_diameter(hist)
            out["S_CL"][w] = connectivity_length(hist)
        return out


# ----------------------------------------------------------------------
# worker-side task functions (module-level: shipped by reference)
# ----------------------------------------------------------------------
#: Worker-local engine memo — a pool worker serves many chunks of the
#: same run, and the engine (family callables, histogram cache) is
#: reconstructible from its spec alone.
_ENGINE_MEMO: dict[tuple, BatchStatisticsEngine] = {}


def _engine_from_spec(spec: tuple) -> BatchStatisticsEngine:
    engine = _ENGINE_MEMO.get(spec)
    if engine is None:
        engine = _ENGINE_MEMO[spec] = BatchStatisticsEngine.from_spec(spec)
    return engine


def _eval_batch_task(arg, shared):
    """Evaluate one self-contained batch (stream path: arrays pickled)."""
    spec, names, packed, us, vs, n, num_pairs, chunk_size = arg
    batch = WorldBatch(n, us, vs, packed, num_pairs)
    values, _ = _engine_from_spec(spec).evaluate(
        batch, names, chunk_size=chunk_size
    )
    return values


def _eval_worlds_task(arg, shared):
    """Evaluate one world chunk against the shared candidate arrays.

    ``shared`` carries the endpoint arrays and the parent's sorted
    union incidence (built once, exported read-only), so the worker
    pays neither a pickle of the pair set nor a per-process lexsort.
    """
    from repro.worlds.batch import _UnionIncidence

    spec, names, packed, n, num_pairs = arg
    batch = WorldBatch(n, shared["us"], shared["vs"], packed, num_pairs)
    batch._union_cell[0] = _UnionIncidence.from_sorted(
        shared["union_heads"], shared["union_tails"], shared["union_pair"]
    )
    values, _ = _engine_from_spec(spec).evaluate(batch, names)
    return values


class BatchedWorldStatisticsEstimator:
    """Evaluate statistics over possible worlds, a batch at a time.

    Parameters
    ----------
    uncertain:
        The published uncertain graph.
    statistics:
        As for :class:`BatchStatisticsEngine`.
    distance_backend, sample_size, distance_seed, anf_b, powerlaw_d_min:
        Engine configuration (see :class:`BatchStatisticsEngine`).
    chunk_size:
        Worlds sampled and evaluated per pass — the memory bound.  The
        RNG stream is consumed identically for every chunking, so
        results do not depend on this knob.
    executor:
        Optional :class:`~repro.exec.executor.ChunkExecutor`.  With a
        process backend, the parent draws every world's keep bits (the
        exact serial stream) and workers evaluate world chunks against
        shared-memory candidate arrays; per-world values are
        bit-identical to the serial loop (pinned by ``tests/exec``).
    """

    _UNSET = _UNSET

    def __init__(
        self,
        uncertain: UncertainGraph,
        statistics: Mapping[str, Callable[[Graph], float]] | None = None,
        *,
        chunk_size: int = SAMPLE_CHUNK_DEFAULT,
        executor=None,
        **engine_options,
    ):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._engine = BatchStatisticsEngine(statistics, **engine_options)
        self._uncertain = uncertain
        self._statistics = self._engine.statistics
        self._chunk_size = chunk_size
        self._executor = executor
        self.last_worlds: list[Graph] = []

    # ------------------------------------------------------------------
    def run(
        self, *, worlds: int, seed=None, collect_worlds: bool = False
    ) -> dict[str, SampleSummary]:
        """Sample ``worlds`` possible worlds and evaluate every statistic.

        Identical contract (and identical per-world values) to
        :meth:`repro.stats.sampling.WorldStatisticsEstimator.run`.
        """
        if worlds < 1:
            raise ValueError(f"need at least one world, got {worlds}")
        rng = as_rng(seed)
        names = list(self._statistics)
        executor = self._executor
        if (
            executor is not None
            and getattr(executor, "backend", "serial") == "process"
            and not collect_worlds
            and self._engine._shardable(names)
        ):
            return self._run_sharded(worlds, rng, names, executor)
        values = {name: np.empty(worlds, dtype=np.float64) for name in names}
        self.last_worlds = []
        done = 0
        # One union-incidence cell threaded across every chunk: batches
        # sampled from one uncertain graph share the candidate pair
        # arrays (pair_arrays is cached), so the incidence lexsort is
        # paid once per run, not once per 32-world chunk.
        union_cell: list = [None]
        with span("worlds.run", worlds=worlds, chunk_size=self._chunk_size):
            while done < worlds:
                count = min(self._chunk_size, worlds - done)
                batch = WorldBatch.sample(
                    self._uncertain, count, seed=rng, union_cell=union_cell
                )
                chunk, graphs = self._engine.evaluate(
                    batch, names, collect_worlds=collect_worlds
                )
                if collect_worlds:
                    self.last_worlds.extend(graphs)
                for name in names:
                    values[name][done : done + count] = chunk[name]
                done += count
        return {
            name: SampleSummary(name=name, values=values[name]) for name in names
        }

    def _run_sharded(
        self, worlds: int, rng, names: list[str], executor
    ) -> dict[str, SampleSummary]:
        """The process-backend path: parent samples, workers evaluate.

        The parent draws *all* packed keep bits in one pass — C-order
        row fill means the stream positions equal the serial chunked
        loop's — builds the sorted union incidence once, exports both
        to shared memory, and dispatches evaluation-grain world chunks
        (the same consolidated auto rule serial slicing uses).  Because
        evaluation is bitwise chunking-invariant and results return in
        chunk order, the concatenated values equal the serial loop's
        bit for bit.
        """
        engine = self._engine
        batch = WorldBatch.sample(self._uncertain, worlds, seed=rng)
        union = batch.union_incidence()
        plan = ChunkPlan.worlds(
            worlds,
            num_vertices=batch.num_vertices,
            num_candidate_pairs=batch.num_candidate_pairs,
            anf=engine._runs_anf_kernel(names),
            anf_b=engine._anf_b,
        )
        spec = engine.spec()
        packed = batch.packed_bits
        tasks = [
            (spec, list(names), packed[c.lo : c.hi], batch.num_vertices,
             batch.num_candidate_pairs)
            for c in plan
        ]
        shared = {
            "us": batch._us,
            "vs": batch._vs,
            "union_heads": union.heads,
            "union_tails": union.tails,
            "union_pair": union.pair,
        }
        self.last_worlds = []
        with span(
            "worlds.run",
            worlds=worlds,
            chunk_size=plan.chunk_size,
            workers=executor.workers,
        ):
            chunks = executor.map(_eval_worlds_task, tasks, shared=shared)
        values = {
            name: np.concatenate([chunk[name] for chunk in chunks])
            for name in names
        }
        return {
            name: SampleSummary(name=name, values=values[name]) for name in names
        }
