"""Batched possible-world sampling: ``W`` worlds in one Bernoulli pass.

A :class:`WorldBatch` is the multi-world counterpart of
:class:`repro.uncertain.sampling.WorldSampler`: instead of flipping the
``m`` candidate pairs once per world, it draws a ``(W, m)`` uniform
matrix in a single RNG call and compares it against the shared
probability vector.  Because NumPy's ``Generator.random`` consumes the
underlying bit stream in C order, row ``w`` of that matrix is exactly
the ``w``-th vector a sequential sampler would have drawn from the same
generator — so a batch and ``WorldSampler.sample_many`` with the same
seed produce *identical* edge sets.  Equivalence tests pin this.

The keep matrix is stored **bit-packed** (``W × ⌈m/8⌉`` bytes) so that
hundreds of worlds over hundreds of thousands of candidate pairs fit
comfortably in memory; the boolean view is unpacked transiently when a
kernel needs it.  Graphs are materialised lazily and in bulk via
:meth:`repro.graphs.graph.Graph.from_edge_array` — the batch itself
never holds per-world Python objects.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exec.plan import draw_rows_per_pass
from repro.graphs.graph import Graph
from repro.obs.metrics import REGISTRY as _OBS
from repro.uncertain.graph import UncertainGraph
from repro.utils.rng import as_rng

# Slice-reuse accounting (repro.obs): how often the shared union
# incidence is actually built vs served from the travelling cell —
# the structural win of PR 6's streaming slice path, now observable.
_UNION_BUILT = _OBS.counter("worlds.union_incidence.built")
_UNION_REUSED = _OBS.counter("worlds.union_incidence.reused")
_WORLDS_SAMPLED = _OBS.counter("worlds.sampled")


def draw_packed_keep_bits(rng, worlds: int, m: int, predicate) -> np.ndarray:
    """``(W, ⌈m/8⌉)`` packed keep bits from a row-grouped uniform draw.

    ``predicate`` maps each ``(count, m)`` uniform block to its boolean
    keep block (e.g. ``u < ps`` for world sampling, ``u >= p`` for the
    sparsification release engine).  Row groups bound the float64
    uniform transient (:func:`repro.exec.plan.draw_rows_per_pass`);
    C-order row fill means any grouping consumes the identical RNG
    stream, which is what keeps every batch sampler seed-equivalent to
    its sequential counterpart.
    """
    rows_per_draw = draw_rows_per_pass(m)
    parts = []
    for lo in range(0, worlds, rows_per_draw):
        count = min(rows_per_draw, worlds - lo)
        keep = predicate(rng.random((count, m)))
        parts.append(
            np.packbits(keep, axis=1)
            if keep.size
            else np.zeros((count, 0), dtype=np.uint8)
        )
    if not parts:
        return np.zeros((0, (m + 7) // 8), dtype=np.uint8)
    return np.concatenate(parts, axis=0)


class _UnionIncidence:
    """Sorted directed incidence of one candidate-pair array set.

    Pair ``j = (u, v)`` contributes the two directed incidences
    ``u → v`` and ``v → u``; sorting them once by ``(head, tail)`` fixes,
    for every possible world, the relative order its kept incidences
    appear in a CSR.  ``pair[s]`` maps sorted slot ``s`` back to the
    candidate pair it came from, so a batch's CSR reduces to one boolean
    gather + ``np.nonzero`` — no per-batch ``lexsort`` over kept edges.
    Built lazily and shared by every :meth:`WorldBatch.slice` view of the
    same candidate arrays (worlds share ≥90% of kept pairs at paper σ,
    and the sort cost is per *pair set*, not per slice).
    """

    __slots__ = ("heads", "tails", "pair")

    def __init__(self, us: np.ndarray, vs: np.ndarray):
        m = len(us)
        heads = np.concatenate([us, vs]).astype(np.int64, copy=False)
        tails = np.concatenate([vs, us]).astype(np.int64, copy=False)
        order = np.lexsort((tails, heads))
        self.heads = heads[order]
        self.tails = tails[order]
        self.pair = np.concatenate(
            [np.arange(m, dtype=np.int64)] * 2
        )[order] if m else np.zeros(0, dtype=np.int64)

    @classmethod
    def from_sorted(
        cls, heads: np.ndarray, tails: np.ndarray, pair: np.ndarray
    ) -> "_UnionIncidence":
        """Adopt already-sorted incidence arrays (e.g. shared-memory
        views exported by the parent), skipping the per-process lexsort."""
        self = cls.__new__(cls)
        self.heads = heads
        self.tails = tails
        self.pair = pair
        return self


class WorldBatch:
    """``W`` possible worlds of one uncertain graph, held as packed bits.

    Construct via :meth:`sample` (the normal path) or
    :meth:`from_keep_matrix` (tests / replay).

    Examples
    --------
    >>> from repro.uncertain import UncertainGraph
    >>> ug = UncertainGraph.from_pairs(3, [(0, 1, 1.0), (1, 2, 0.0)])
    >>> batch = WorldBatch.sample(ug, 4, seed=0)
    >>> [g.num_edges for g in batch.graphs()]
    [1, 1, 1, 1]
    """

    __slots__ = (
        "_n",
        "_us",
        "_vs",
        "_num_worlds",
        "_num_pairs",
        "_packed",
        "_flat",
        "_csr",
        "_union_cell",
    )

    def __init__(
        self,
        n: int,
        us: np.ndarray,
        vs: np.ndarray,
        packed: np.ndarray,
        num_pairs: int,
        *,
        union_cell: list | None = None,
    ):
        self._n = int(n)
        self._us = us
        self._vs = vs
        self._packed = packed
        self._num_worlds = packed.shape[0]
        self._num_pairs = int(num_pairs)
        self._flat: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        # One-element holder for the lazily built sorted incidence, so a
        # slice built *before* the parent's CSR still shares the result.
        self._union_cell: list = union_cell if union_cell is not None else [None]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        uncertain: UncertainGraph,
        worlds: int,
        *,
        seed=None,
        union_cell: list | None = None,
    ) -> "WorldBatch":
        """Draw ``worlds`` independent possible worlds in one pass.

        Parameters
        ----------
        uncertain:
            The published uncertain graph.
        worlds:
            Number of worlds ``W``.
        seed:
            Anything :func:`repro.utils.rng.as_rng` accepts.  Passing a
            ``Generator`` consumes ``W·m`` uniforms from it — the same
            stream positions a sequential sampler would use, so batched
            and sequential draws from one generator interleave exactly.
        union_cell:
            Optional shared union-incidence holder.  Successive batches
            sampled from the *same* uncertain graph share one candidate
            pair set (``pair_arrays`` is cached), so a caller looping
            chunks can thread one cell through and pay the incidence
            lexsort once instead of once per chunk.
        """
        if worlds < 0:
            raise ValueError(f"number of worlds must be non-negative, got {worlds}")
        us, vs, ps = uncertain.pair_arrays()
        rng = as_rng(seed)
        packed = draw_packed_keep_bits(
            rng, worlds, len(ps), lambda uniforms: uniforms < ps
        )
        _WORLDS_SAMPLED.add(worlds)
        return cls(
            uncertain.num_vertices, us, vs, packed, len(ps), union_cell=union_cell
        )

    @classmethod
    def from_keep_matrix(
        cls, n: int, us: np.ndarray, vs: np.ndarray, keep: np.ndarray
    ) -> "WorldBatch":
        """Wrap an explicit boolean ``(W, m)`` keep matrix (tests/replay)."""
        keep = np.asarray(keep, dtype=bool)
        if keep.ndim != 2 or keep.shape[1] != len(us):
            raise ValueError(
                f"keep matrix must have shape (W, {len(us)}), got {keep.shape}"
            )
        packed = np.packbits(keep, axis=1) if keep.size else np.zeros(
            (keep.shape[0], 0), dtype=np.uint8
        )
        return cls(n, us, vs, packed, keep.shape[1])

    # ------------------------------------------------------------------
    # shape accessors
    # ------------------------------------------------------------------
    @property
    def num_worlds(self) -> int:
        """Number of worlds ``W`` in the batch."""
        return self._num_worlds

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n`` (shared by every world)."""
        return self._n

    @property
    def num_candidate_pairs(self) -> int:
        """Number of candidate pairs ``m`` flipped per world."""
        return self._num_pairs

    @property
    def nbytes(self) -> int:
        """Memory held by the packed keep matrix."""
        return int(self._packed.nbytes)

    @property
    def packed_bits(self) -> np.ndarray:
        """The raw ``(W, ⌈m/8⌉)`` packed keep bits (the wire format the
        execution layer ships to worker processes)."""
        return self._packed

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def keep_matrix(self) -> np.ndarray:
        """The boolean ``(W, m)`` keep matrix (unpacked transiently)."""
        if self._num_pairs == 0:
            return np.zeros((self._num_worlds, 0), dtype=bool)
        return np.unpackbits(self._packed, axis=1, count=self._num_pairs).astype(
            bool, copy=False
        )

    def world_mask(self, w: int) -> np.ndarray:
        """Boolean keep vector of world ``w``."""
        if not 0 <= w < self._num_worlds:
            raise IndexError(f"world index {w} out of range [0, {self._num_worlds})")
        if self._num_pairs == 0:
            return np.zeros(0, dtype=bool)
        return np.unpackbits(self._packed[w], count=self._num_pairs).astype(
            bool, copy=False
        )

    def edge_counts(self) -> np.ndarray:
        """Edges per world — the batched ``S_NE`` column, and a cheap
        sanity signal (``E[counts] ≈ Σ p(e)``)."""
        if self._num_pairs == 0:
            return np.zeros(self._num_worlds, dtype=np.int64)
        # popcount on the packed bytes: no need to unpack the matrix
        table = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
            axis=1
        )
        return table[self._packed].sum(axis=1).astype(np.int64)

    def world_edges(self, w: int) -> np.ndarray:
        """Edges of world ``w`` as an ``(m_w, 2)`` array."""
        mask = self.world_mask(w)
        return np.column_stack([self._us[mask], self._vs[mask]])

    def flat_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All kept edges of all worlds, flattened with world ids.

        Returns
        -------
        (world_ids, us, vs):
            Parallel arrays over every kept (world, pair) incidence.
            Offsetting endpoints by ``world_ids · n`` turns the batch
            into one big ``W·n``-vertex disjoint-union graph — the
            layout every batched kernel (degrees, triangles, HyperANF)
            diffuses over in a single scatter pass.  Computed once per
            batch and cached (several kernels consume it).
        """
        if self._flat is None:
            w_idx, pair_idx = np.nonzero(self.keep_matrix())
            self._flat = (w_idx, self._us[pair_idx], self._vs[pair_idx])
        return self._flat

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency of the ``W·n``-vertex disjoint-union graph.

        Returns
        -------
        (indptr, indices):
            ``indices[indptr[x]:indptr[x+1]]`` are the sorted neighbours
            of flattened vertex ``x = w·n + v``.  World ``w`` occupies
            rows ``[w·n, (w+1)·n)``; slicing ``indptr`` there yields the
            world's own CSR.  Built once per batch and cached.
        """
        if self._csr is None:
            union = self.union_incidence()
            # Gathering the keep matrix through ``union.pair`` lays every
            # world's incidences out in (head, tail) order, so one C-order
            # ``np.nonzero`` replaces the former per-batch full lexsort:
            # rows ascend by world, columns by sorted slot, i.e. exactly
            # the (w·n + head, tail) order the lexsort produced (the keys
            # are unique — candidate pairs are distinct within a world).
            keep = self.keep_matrix()[:, union.pair]
            w_idx, slot = np.nonzero(keep)
            offset = w_idx * np.int64(self._n)
            counts = np.bincount(
                offset + union.heads[slot], minlength=self._num_worlds * self._n
            )
            indptr = np.zeros(self._num_worlds * self._n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._csr = (indptr, offset + union.tails[slot])
        return self._csr

    def union_incidence(self) -> _UnionIncidence:
        """The shared sorted directed incidence of the candidate pairs.

        Built once per candidate-pair array set and reused by every
        :meth:`slice` view (the holder travels with the slice), so
        chunked evaluation sorts the union structure exactly once.
        """
        if self._union_cell[0] is None:
            self._union_cell[0] = _UnionIncidence(self._us, self._vs)
            _UNION_BUILT.add(1)
        else:
            _UNION_REUSED.add(1)
        return self._union_cell[0]

    def slice(self, lo: int, hi: int) -> "WorldBatch":
        """Worlds ``lo:hi`` as a new batch sharing the candidate arrays.

        A cheap packed-row slice (no unpack/repack); the sub-batch's
        world ``w`` is this batch's world ``lo + w``.  Evaluation
        kernels applied per slice produce exactly the values they would
        inside the full batch (worlds never interact), which is what
        lets the estimator bound its working set to a cache-friendly
        number of worlds.
        """
        if not 0 <= lo <= hi <= self._num_worlds:
            raise IndexError(
                f"slice [{lo}, {hi}) out of range [0, {self._num_worlds}]"
            )
        return WorldBatch(
            self._n,
            self._us,
            self._vs,
            self._packed[lo:hi],
            self._num_pairs,
            union_cell=self._union_cell,
        )

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def world_graph(self, w: int) -> Graph:
        """Materialise world ``w`` as a :class:`Graph` (bulk constructor)."""
        return Graph.from_edge_array(self._n, self.world_edges(w))

    def graphs(self) -> Iterator[Graph]:
        """Lazily materialise every world in order."""
        for w in range(self._num_worlds):
            yield self.world_graph(w)
