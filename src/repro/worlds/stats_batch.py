"""Per-world statistics for a whole batch in flattened array passes.

The degree family (S_NE, S_AD, S_MD, S_DV, S_PL) needs only the
``(W, n)`` degree matrix, which one ``bincount`` over world-offset
endpoints produces for every world at once.  Triangles — the expensive
input of S_CC — are counted by the vectorised forward algorithm over
the batch's disjoint-union graph: orient edges by degree rank, pair up
out-neighbours blockwise, and close each wedge against the directed
edge codes with one ``searchsorted``.  Wedge enumeration is chunked by
a memory budget so a heavy-tailed hub cannot blow up the intermediate
arrays.

Every scalar is produced by the *same* arithmetic as the sequential
``Graph → float`` callables in :mod:`repro.stats` (S_PL literally shares
its fit function), so batched and per-world values agree to fp
round-off; the equivalence tests pin ≤1e-9.
"""

from __future__ import annotations

import numpy as np

from repro.stats.degree import powerlaw_exponent_from_distribution
from repro.worlds.batch import WorldBatch


def degree_matrix(batch: WorldBatch) -> np.ndarray:
    """Degree sequences of all worlds as a ``(W, n)`` int64 matrix.

    One flattened ``bincount`` over world-offset edge endpoints — the
    batched counterpart of ``W`` separate ``Graph.degrees()`` calls.
    """
    n, W = batch.num_vertices, batch.num_worlds
    w_idx, us, vs = batch.flat_edges()
    offset = w_idx * np.int64(n)
    endpoints = np.concatenate([offset + us, offset + vs])
    counts = np.bincount(endpoints, minlength=W * n)
    return counts.reshape(W, n)


def degree_statistics_batch(
    batch: WorldBatch,
    *,
    degrees: np.ndarray | None = None,
    powerlaw_d_min: int | None = None,
) -> dict[str, np.ndarray]:
    """S_NE, S_AD, S_MD, S_DV and S_PL for every world.

    Parameters
    ----------
    batch:
        The world batch.
    degrees:
        Optional precomputed :func:`degree_matrix` (shared with the
        clustering kernel by the estimator).
    powerlaw_d_min:
        Tail cut for the S_PL fit, as in
        :func:`repro.stats.degree.powerlaw_exponent`.

    Returns
    -------
    dict[str, np.ndarray]
        Statistic name → ``(W,)`` float64 vector of per-world values.
    """
    n, W = batch.num_vertices, batch.num_worlds
    if degrees is None:
        degrees = degree_matrix(batch)
    ne = degrees.sum(axis=1, dtype=np.int64) // 2
    out: dict[str, np.ndarray] = {"S_NE": ne.astype(np.float64)}
    if n == 0:
        zeros = np.zeros(W, dtype=np.float64)
        out.update(S_AD=zeros, S_MD=zeros.copy(), S_DV=zeros.copy(), S_PL=zeros.copy())
        return out
    out["S_AD"] = 2.0 * ne / n
    out["S_MD"] = degrees.max(axis=1).astype(np.float64)
    out["S_DV"] = degrees.astype(np.float64).var(axis=1)
    # The fit itself is per-world (tail supports differ world to world)
    # but runs on the shared degree matrix and the shared fit function,
    # so it is bit-equal to the scalar path at negligible cost.
    pl = np.empty(W, dtype=np.float64)
    for w in range(W):
        dist = np.bincount(degrees[w]) / n
        pl[w] = powerlaw_exponent_from_distribution(
            dist, average_degree=float(out["S_AD"][w]), d_min=powerlaw_d_min
        )
    out["S_PL"] = pl
    return out


def triangle_counts_batch(
    batch: WorldBatch,
    *,
    degrees: np.ndarray | None = None,
    wedge_budget: int = 1 << 23,
) -> np.ndarray:
    """Triangles (3-cliques, counted once) per world.

    The vectorised *forward* algorithm over the batch's disjoint-union
    graph: orient every kept edge from its lower-rank to its higher-rank
    endpoint (rank = (degree, id), the classic degree ordering), build
    the out-neighbour CSR, enumerate out-neighbour pairs blockwise, and
    close each pair against the directed edge codes with a single
    ``searchsorted``.  Every triangle has exactly one vertex with out-
    edges to the other two, so each is counted once — and out-degrees
    are bounded by ~√m under this orientation, which keeps the wedge
    count near-linear even on heavy-tailed worlds.

    Parameters
    ----------
    batch:
        The world batch.
    degrees:
        Optional precomputed :func:`degree_matrix`.
    wedge_budget:
        Maximum out-neighbour pairs materialised per chunk (bounds peak
        memory; results are independent of the chunking).
    """
    n, W = batch.num_vertices, batch.num_worlds
    counts = np.zeros(W, dtype=np.int64)
    if n == 0 or W == 0:
        return counts
    if degrees is None:
        degrees = degree_matrix(batch)
    deg_flat = degrees.ravel()
    big_n = np.int64(W) * np.int64(n)

    w_idx, us, vs = batch.flat_edges()
    offset = w_idx * np.int64(n)
    fu, fv = offset + us, offset + vs
    du, dv = deg_flat[fu], deg_flat[fv]
    forward = (du < dv) | ((du == dv) & (fu < fv))
    heads = np.where(forward, fu, fv)
    tails = np.where(forward, fv, fu)

    edge_codes = np.sort(heads * big_n + tails)
    order = np.argsort(heads, kind="stable")
    out_nbrs = tails[order]
    lengths = np.bincount(heads, minlength=big_n)
    starts = np.cumsum(lengths) - lengths

    sq = lengths * lengths
    boundaries = np.cumsum(sq)
    if len(boundaries) == 0 or boundaries[-1] == 0:
        return counts

    row0 = 0
    while row0 < len(lengths):
        # grow the row range until the wedge budget is hit
        base = boundaries[row0 - 1] if row0 else 0
        row1 = int(np.searchsorted(boundaries, base + wedge_budget, side="right"))
        row1 = max(row1, row0 + 1)  # always take at least one row
        L = lengths[row0:row1]
        sqc = sq[row0:row1]
        chunk_total = int(sqc.sum())
        if chunk_total:
            block = np.repeat(np.arange(len(L)), sqc)
            q = np.arange(chunk_total) - np.repeat(np.cumsum(sqc) - sqc, sqc)
            pos_a, pos_b = q // L[block], q % L[block]
            pair = pos_a < pos_b  # each out-neighbour pair once
            base_pos = starts[row0:row1][block[pair]]
            a = out_nbrs[base_pos + pos_a[pair]]
            b = out_nbrs[base_pos + pos_b[pair]]
            # the closing edge is oriented lower rank → higher rank
            da, db = deg_flat[a], deg_flat[b]
            a_first = (da < db) | ((da == db) & (a < b))
            codes = np.where(a_first, a, b) * big_n + np.where(a_first, b, a)
            idx = np.searchsorted(edge_codes, codes)
            idx_safe = np.minimum(idx, len(edge_codes) - 1)
            closed = edge_codes[idx_safe] == codes
            wedge_world = (block[pair][closed] + row0) // n
            counts += np.bincount(wedge_world, minlength=W)
        row0 = row1
    return counts


def clustering_coefficients_batch(
    batch: WorldBatch,
    *,
    degrees: np.ndarray | None = None,
    triangles: np.ndarray | None = None,
    wedge_budget: int = 1 << 23,
) -> np.ndarray:
    """The paper's ``S_CC = T3 / T2`` per world (0 where ``T2 = 0``).

    ``T2 = Σ_v C(d_v, 2) − 2·T3`` (the identity of
    :mod:`repro.graphs.triangles`) comes straight from the degree
    matrix, so only the triangle count needs graph structure.
    """
    if degrees is None:
        degrees = degree_matrix(batch)
    if triangles is None:
        triangles = triangle_counts_batch(
            batch, degrees=degrees, wedge_budget=wedge_budget
        )
    centered = (degrees * (degrees - 1) // 2).sum(axis=1, dtype=np.int64)
    t2 = centered - 2 * triangles
    return np.where(t2 > 0, triangles / np.maximum(t2, 1), 0.0)
