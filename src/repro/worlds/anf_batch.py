"""Multi-world HyperANF: one register diffusion for a whole batch.

HyperANF's union step is an elementwise register max along edges —
worlds never interact, so ``W`` runs stack into a single
``(W·n, 2^b)`` uint8 register matrix diffused over the batch's
disjoint-union CSR (the world-offset layout of
:meth:`repro.worlds.batch.WorldBatch.csr`).  The merge is a segmented
max executed *degree-grouped*: vertices are bucketed by neighbour
count, each bucket's gathered neighbour rows reshape to
``(rows, d, 2^b)`` and reduce with one ``max(axis=1)`` — a handful of
long SIMD reductions per step instead of one ufunc dispatch per vertex
(``np.ufunc.at``/``reduceat`` are an order of magnitude slower here).
Per-row cardinality estimates are cached and recomputed only for rows
whose registers changed, which is what makes the per-step ``N(t)``
bookkeeping cheap late in the diffusion.

Convergence is a per-world fixed point: a world whose registers stop
changing is frozen (its blocks drop out of the gather) while the others
keep diffusing.

Register initialisation reuses :func:`repro.anf.hyperloglog.init_registers`
with the same ``(b, seed)`` for every world — exactly what the
sequential path does when it reruns :func:`repro.anf.hyperanf.hyperanf`
per sampled world with a fixed estimator seed (§6.3 protocol: estimator
noise is held constant so world-to-world variation reflects the
uncertain graph).  Per-world outputs are therefore identical to ``W``
sequential runs, which the equivalence tests pin.
"""

from __future__ import annotations

import numpy as np

from repro.anf.distance_stats import neighbourhood_function_to_histogram
from repro.anf.hyperanf import NeighbourhoodFunction
from repro.anf.hyperloglog import estimate_many, init_registers
from repro.graphs.traversal import multi_range
from repro.obs.metrics import REGISTRY as _OBS
from repro.stats.distance import (
    average_distance,
    connectivity_length,
    diameter,
    effective_diameter,
)
from repro.worlds.batch import WorldBatch

# HyperANF telemetry (repro.obs): worlds diffused and their
# iterations-to-fixpoint distribution (converged_at per world).
_ANF_WORLDS = _OBS.counter("anf.worlds")
_ANF_ITERATIONS = _OBS.histogram("anf.iterations")


class _UnionPlan:
    """Degree-grouped gather plan for the active worlds' CSR blocks.

    Attributes
    ----------
    rows:
        Flattened vertex ids with ≥1 neighbour, sorted by degree.
    sub_indices:
        Their neighbour lists concatenated in the same order.
    groups:
        ``(degree, row_lo, row_hi, elem_lo, elem_hi)`` per distinct
        degree — ``sub_indices[elem_lo:elem_hi]`` reshapes to
        ``(row_hi − row_lo, degree)`` blocks.
    """

    __slots__ = ("rows", "sub_indices", "groups")

    def __init__(self, indptr, indices, degs, row_mask):
        rows = np.nonzero(row_mask)[0]
        sub_degs = degs[rows]
        nonempty = sub_degs > 0
        rows, sub_degs = rows[nonempty], sub_degs[nonempty]
        order = np.argsort(sub_degs, kind="stable")
        self.rows = rows[order]
        sub_degs = sub_degs[order]
        if len(self.rows) == 0:
            self.sub_indices = np.empty(0, dtype=indices.dtype)
            self.groups = []
            return
        self.sub_indices = indices[multi_range(indptr[self.rows], sub_degs)]
        bounds = np.concatenate(
            [[0], np.nonzero(np.diff(sub_degs))[0] + 1, [len(sub_degs)]]
        )
        elem_offsets = np.cumsum(sub_degs) - sub_degs
        self.groups = [
            (
                int(sub_degs[lo]),
                int(lo),
                int(hi),
                int(elem_offsets[lo]),
                int(elem_offsets[lo]) + int(sub_degs[lo]) * (int(hi) - int(lo)),
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]


def hyperanf_batch(
    batch: WorldBatch,
    *,
    b: int = 6,
    seed: int = 0,
    max_steps: int | None = None,
) -> list[NeighbourhoodFunction]:
    """Run HyperANF on every world of ``batch`` in one stacked diffusion.

    Parameters
    ----------
    batch:
        The world batch.
    b, seed, max_steps:
        As in :func:`repro.anf.hyperanf.hyperanf`; shared by all worlds.

    Returns
    -------
    list[NeighbourhoodFunction]
        Per-world neighbourhood functions, index-aligned with the batch.
    """
    n, W = batch.num_vertices, batch.num_worlds
    if n == 0:
        return [
            NeighbourhoodFunction(values=np.zeros(1), converged_at=0)
            for _ in range(W)
        ]
    if W == 0:
        return []
    if max_steps is None:
        max_steps = n

    base = init_registers(n, b=b, seed=seed)
    regs = np.tile(base, (W, 1))
    m = regs.shape[1]
    indptr, indices = batch.csr()
    degs = np.diff(indptr)
    row_world = np.repeat(np.arange(W), n)

    # cached per-row estimates, kept exact; every world starts from the
    # same n rows, so estimating the base once and tiling is identical
    # to (and W times cheaper than) estimating the full stack
    row_est = np.tile(estimate_many(base), W)
    est0 = row_est.reshape(W, n).sum(axis=1)
    values: list[list[float]] = [[float(est0[w])] for w in range(W)]
    converged_at = np.full(W, max_steps, dtype=np.int64)
    active = np.ones(W, dtype=bool)

    # Frontier invariant: a row's merge result can only change at step t
    # if one of its neighbours changed at step t−1, so each step only
    # recomputes the previous step's change-neighbourhood (all rows at
    # step 1).  The gather snapshots pre-step registers, making the
    # in-place group updates synchronous — identical to the sequential
    # copy-and-merge.
    frontier = active[row_world]
    for step in range(1, max_steps + 1):
        plan = _UnionPlan(indptr, indices, degs, frontier)
        changed_chunks = []
        gathered = regs[plan.sub_indices]
        for d, r_lo, r_hi, e_lo, e_hi in plan.groups:
            rows_d = plan.rows[r_lo:r_hi]
            old = regs[rows_d]
            seg = gathered[e_lo:e_hi].reshape(r_hi - r_lo, d, m).max(axis=1)
            grew = (seg > old).any(axis=1)
            if grew.any():
                rows_g = rows_d[grew]
                regs[rows_g] = np.maximum(old[grew], seg[grew])
                changed_chunks.append(rows_g)
        changed = np.zeros(W, dtype=bool)
        if changed_chunks:
            changed_rows = np.concatenate(changed_chunks)
            changed[row_world[changed_rows]] = True
            row_est[changed_rows] = estimate_many(regs[changed_rows])
        newly_frozen = active & ~changed
        converged_at[newly_frozen] = step - 1
        active &= changed
        if not active.any():
            break
        live = np.nonzero(active)[0]
        est = row_est.reshape(W, n)[live].sum(axis=1)
        for i, w in enumerate(live):
            values[w].append(float(est[i]))
        with_nbrs = changed_rows[degs[changed_rows] > 0]
        frontier = np.zeros(W * n, dtype=bool)
        if len(with_nbrs):
            frontier[indices[multi_range(indptr[with_nbrs], degs[with_nbrs])]] = True
        frontier &= active[row_world]

    _ANF_WORLDS.add(W)
    _ANF_ITERATIONS.observe_many(converged_at)
    return [
        NeighbourhoodFunction(values=np.asarray(values[w]), converged_at=int(converged_at[w]))
        for w in range(W)
    ]


#: The four scalar Table-4 distance statistics derived from one histogram.
DISTANCE_STATISTIC_NAMES = ("S_APD", "S_DiamLB", "S_EDiam", "S_CL")


def anf_distance_statistics_batch(
    batch: WorldBatch,
    *,
    b: int = 6,
    seed: int = 0,
    max_steps: int | None = None,
) -> dict[str, np.ndarray]:
    """S_APD, S_DiamLB, S_EDiam and S_CL for every world via batched ANF.

    Each world's neighbourhood function is differentiated into a
    :class:`~repro.stats.distance.DistanceHistogram` and fed to the
    *same* statistic functions the sequential registry uses, so values
    match the per-world ``"anf"`` backend exactly.
    """
    n = batch.num_vertices
    nfs = hyperanf_batch(batch, b=b, seed=seed, max_steps=max_steps)
    out = {name: np.empty(len(nfs), dtype=np.float64) for name in DISTANCE_STATISTIC_NAMES}
    for w, nf in enumerate(nfs):
        hist = neighbourhood_function_to_histogram(nf, n)
        out["S_APD"][w] = average_distance(hist)
        out["S_DiamLB"][w] = diameter(hist)
        out["S_EDiam"][w] = effective_diameter(hist)
        out["S_CL"][w] = connectivity_length(hist)
    return out
