"""repro.worlds — batched possible-world engine for §6 utility evaluation.

The paper's utility tables (Tables 4–6) average ten statistics over
~100 sampled possible worlds per obfuscated graph.  The sequential path
(:class:`repro.uncertain.sampling.WorldSampler` +
:class:`repro.stats.sampling.WorldStatisticsEstimator`) draws and
measures one world at a time; this package does the same work in
batches and is the engine behind ``backend="batched"`` everywhere a
world sample is evaluated (harness, CLI, benchmarks).

Architecture
------------
Four layers, each consuming the previous one's flat-array output::

    batch.py        WorldBatch — W worlds from one (W, m) Bernoulli
                    pass over the shared candidate-pair arrays, stored
                    bit-packed; exposes flat world-offset edge lists
                    (one W·n-vertex disjoint union) and lazy per-world
                    Graph materialisation via Graph.from_edge_array.
    stats_batch.py  degree family (S_NE, S_AD, S_MD, S_DV, S_PL) from
                    one flattened bincount; triangles / S_CC by chunked
                    vectorised wedge closure over the union CSR.
    anf_batch.py    multi-world HyperANF — registers stacked into a
                    (W·n, 2^b) uint8 matrix, merged per step by a
                    degree-grouped segmented max over a change frontier,
                    per-world fixed-point convergence; yields the four
                    distance statistics.
    estimator.py    BatchStatisticsEngine — name-based kernel dispatch
                    turning any WorldBatch into per-world statistic
                    vectors — and BatchedWorldStatisticsEstimator, the
                    chunked, streaming drop-in backend for
                    WorldStatisticsEstimator with bounded memory.
    releases.py     sample_releases — Table-6 randomization baselines
                    (sparsification / perturbation) drawn as one
                    WorldBatch per scheme: a release scheme is a
                    distribution over possible worlds, so the same
                    kernels that evaluate obfuscation worlds evaluate
                    baseline releases.

Determinism contract: a batch consumes the RNG stream exactly as the
sequential sampler would (NumPy fills ``(W, m)`` uniforms in C order),
so for equal seeds the engine reproduces the *same worlds* and — by
sharing the sequential statistic arithmetic — the same table values.
Equivalence tests in ``tests/worlds/`` pin both properties.
"""

from repro.worlds.anf_batch import anf_distance_statistics_batch, hyperanf_batch
from repro.worlds.batch import WorldBatch
from repro.worlds.estimator import (
    BATCHED_STATISTIC_NAMES,
    BatchedWorldStatisticsEstimator,
    BatchStatisticsEngine,
)
from repro.worlds.releases import RELEASE_SCHEMES, sample_releases
from repro.worlds.stats_batch import (
    clustering_coefficients_batch,
    degree_matrix,
    degree_statistics_batch,
    triangle_counts_batch,
)

__all__ = [
    "WorldBatch",
    "BatchedWorldStatisticsEstimator",
    "BatchStatisticsEngine",
    "BATCHED_STATISTIC_NAMES",
    "RELEASE_SCHEMES",
    "sample_releases",
    "degree_matrix",
    "degree_statistics_batch",
    "triangle_counts_batch",
    "clustering_coefficients_batch",
    "hyperanf_batch",
    "anf_distance_statistics_batch",
]
